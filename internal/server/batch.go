package server

// Cross-request batching for /v1/analyze. The artifact cache's
// singleflight already dedups concurrent *loads* of one fingerprint;
// batching goes one level up and dedups the *responses*: concurrent
// same-fingerprint requests elect a leader, the followers wait, and
// every follower is answered with the leader's serialized response
// bytes without re-entering the handler (no cache lease, no report
// walk, no JSON encoding). A completed batch then lingers for a small
// window so a stampede arriving just after completion still coalesces.
//
// The batch key includes every request field that shapes the response
// (fingerprint + emit flag), so coalesced responses are byte-exact for
// their joiners; per-request fields like ElapsedMS are the leader's.

import (
	"sync"
	"time"
)

// batcher coalesces same-key requests onto one in-flight (or
// just-completed) response.
type batcher struct {
	// linger holds a completed batch open for this window; negative
	// disables coalescing entirely.
	linger time.Duration

	mu    sync.Mutex
	calls map[string]*batchCall
}

// batchCall is one coalesced response. code and body are immutable
// once done is closed.
type batchCall struct {
	done chan struct{}
	code int
	body []byte
}

func newBatcher(linger time.Duration) *batcher {
	return &batcher{linger: linger, calls: make(map[string]*batchCall)}
}

// join returns the call for key and whether the caller is its leader.
// A leader must eventually call finish exactly once, even on its error
// and panic paths — followers block until it does.
func (b *batcher) join(key string) (*batchCall, bool) {
	if b.linger < 0 {
		return &batchCall{done: make(chan struct{})}, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if c, ok := b.calls[key]; ok {
		return c, false
	}
	c := &batchCall{done: make(chan struct{})}
	b.calls[key] = c
	return c, true
}

// finish publishes the leader's response to every follower and keeps
// the batch joinable for the linger window.
func (b *batcher) finish(key string, c *batchCall, code int, body []byte) {
	c.code, c.body = code, body
	close(c.done)
	if b.linger < 0 {
		return
	}
	if b.linger == 0 {
		b.remove(key, c)
		return
	}
	time.AfterFunc(b.linger, func() { b.remove(key, c) })
}

func (b *batcher) remove(key string, c *batchCall) {
	b.mu.Lock()
	if b.calls[key] == c {
		delete(b.calls, key)
	}
	b.mu.Unlock()
}
