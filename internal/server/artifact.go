package server

// The serving side of the shared artifact tier. After a cold load the
// replica serializes the program's analysis — method reports, parallel
// methods, loop counts, emitted parallel source — into an
// api.ArtifactBundle and publishes it to the configured blob store.
// When another replica later misses on the same fingerprint, it adopts
// the bundle (decode + integrity check) and answers /v1/analyze
// without re-running parse, type check, or commutativity analysis.
// Adopted bundles are kept in a small in-memory LRU so repeat requests
// on a non-owner replica stop paying even the blob fetch.

import (
	"container/list"
	"net/http"
	"time"

	"commute"
	"commute/internal/server/api"
	"commute/internal/server/cache"
)

// artMemEntries bounds the in-memory adopted-bundle LRU. Bundles are
// small (a report list plus one source file), so this is a few MiB at
// most.
const artMemEntries = 128

// bundleFromSystem serializes a loaded system's analysis artifacts.
func bundleFromSystem(key, name string, sys *commute.System) *api.ArtifactBundle {
	b := &api.ArtifactBundle{
		Fingerprint:     key,
		Name:            name,
		ParallelMethods: sys.ParallelMethods(),
		LoopsFound:      sys.Plan.LoopsFound,
		LoopsSuppressed: sys.Plan.LoopsSuppressed,
	}
	for _, mr := range sys.Reports() {
		b.Methods = append(b.Methods, apiMethodReport(mr))
	}
	if sys.File != nil {
		b.ParallelSource = sys.Plan.EmitParallelSource(sys.File)
	}
	return b
}

// publishArtifact encodes and offers the bundle to the blob tier.
// Publishing is best-effort: a full disk or an unreachable tier must
// not fail the request that triggered the cold load.
func (s *Server) publishArtifact(key, name string, sys *commute.System) {
	if s.blobs == nil {
		return
	}
	data, err := api.EncodeArtifact(bundleFromSystem(key, name, sys))
	if err != nil {
		return
	}
	if s.blobs.Put(key, data) == nil {
		s.published.Add(1)
	}
}

// adoptArtifact looks the fingerprint up in the adopted-bundle LRU and
// then the blob tier. A blob-tier hit is decoded, integrity-checked,
// counted as an adoption, and cached in the LRU.
func (s *Server) adoptArtifact(key string) (*api.ArtifactBundle, bool) {
	s.artMu.Lock()
	if el, ok := s.artMap[key]; ok {
		s.artLL.MoveToFront(el)
		b := el.Value.(*artEntry).bundle
		s.artMu.Unlock()
		return b, true
	}
	s.artMu.Unlock()

	if s.blobs == nil {
		return nil, false
	}
	data, err := s.blobs.Get(key)
	if err != nil {
		return nil, false
	}
	b, err := api.DecodeArtifact(key, data)
	if err != nil {
		// Corrupt or mislabeled blob: refuse to adopt; the caller falls
		// back to a full load, which will re-publish a good bundle.
		return nil, false
	}
	s.adoptions.Add(1)

	s.artMu.Lock()
	if _, ok := s.artMap[key]; !ok {
		s.artMap[key] = s.artLL.PushFront(&artEntry{key: key, bundle: b})
		if s.artLL.Len() > artMemEntries {
			old := s.artLL.Back()
			s.artLL.Remove(old)
			delete(s.artMap, old.Value.(*artEntry).key)
		}
	}
	s.artMu.Unlock()
	return b, true
}

// artEntry is one adopted bundle in the LRU.
type artEntry struct {
	key    string
	bundle *api.ArtifactBundle
}

// handleArtifact serves GET /v1/artifact/{key}: the encoded bundle for
// a fingerprint this replica can produce — from its warm system cache
// (the owner path: peers pull artifacts the owner analyzed) or from
// its own blob tier. 404 otherwise; peers treat that as "try the next
// peer".
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if h, ok := s.cache.Peek(key); ok {
		sys := h.System()
		name := key // the bundle name is diagnostic only; prefer the real one below
		if b, ok := s.peekBundleName(key); ok {
			name = b
		}
		data, err := api.EncodeArtifact(bundleFromSystem(key, name, sys))
		h.Close()
		if err == nil {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
			return
		}
	}
	if s.blobs != nil {
		if data, err := s.blobs.Get(key); err == nil {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
			return
		}
	}
	writeErr(w, http.StatusNotFound, "no artifact for "+key)
}

// peekBundleName recalls the program name a fingerprint was loaded
// under (kept by loadSystemKeyed for artifact serving).
func (s *Server) peekBundleName(key string) (string, bool) {
	s.nameMu.Lock()
	defer s.nameMu.Unlock()
	name, ok := s.names[key]
	return name, ok
}

func (s *Server) rememberName(key, name string) {
	s.nameMu.Lock()
	if len(s.names) > 4*artMemEntries {
		// Bounded diagnostic map; resetting it only degrades bundle
		// labels, never correctness.
		s.names = make(map[string]string)
	}
	s.names[key] = name
	s.nameMu.Unlock()
}

// initArtifacts wires the artifact state at construction.
func (s *Server) initArtifacts(blobs cache.BlobStore) {
	s.blobs = blobs
	s.artMap = make(map[string]*list.Element)
	s.artLL = list.New()
	s.names = make(map[string]string)
}

// analyzeFromBundle renders the /v1/analyze response for an adopted
// (or freshly built) bundle.
func analyzeFromBundle(b *api.ArtifactBundle, key, cacheWord string, emit bool, start time.Time) api.AnalyzeResponse {
	resp := api.AnalyzeResponse{
		Key:             key,
		Cache:           cacheWord,
		Methods:         b.Methods,
		ParallelMethods: b.ParallelMethods,
		LoopsFound:      b.LoopsFound,
		LoopsSuppressed: b.LoopsSuppressed,
	}
	if emit {
		resp.ParallelSource = b.ParallelSource
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp
}
