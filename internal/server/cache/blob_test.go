package cache

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fp returns a syntactically valid fingerprint key for tests.
func fp(seed byte) string {
	return strings.Repeat(string([]byte{'a' + seed%6}), 64)
}

func TestDirStoreRoundTrip(t *testing.T) {
	s, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := fp(0)
	if _, err := s.Get(key); !errors.Is(err, ErrBlobNotFound) {
		t.Fatalf("missing key err = %v, want ErrBlobNotFound", err)
	}
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, err := s.Get(key)
	if err != nil || string(data) != "payload" {
		t.Fatalf("get = %q, %v", data, err)
	}
	// Re-put of a content-addressed key is idempotent.
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
}

func TestBlobStoresRejectBadKeys(t *testing.T) {
	dir, err := NewDirStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemStore()
	bad := []string{
		"",
		"short",
		"../../../../etc/passwd",
		strings.Repeat("A", 64),           // uppercase
		strings.Repeat("g", 64),           // non-hex
		strings.Repeat("a", 63) + "/",     // separator
		"..%2f" + strings.Repeat("a", 58), // encoded traversal
		strings.Repeat("a", 32) + ".." + strings.Repeat("a", 30), // dots mid-key
	}
	for _, key := range bad {
		if err := dir.Put(key, []byte("x")); err == nil {
			t.Errorf("DirStore.Put accepted bad key %q", key)
		}
		if _, err := dir.Get(key); !errors.Is(err, ErrBlobNotFound) {
			t.Errorf("DirStore.Get(%q) err = %v, want ErrBlobNotFound", key, err)
		}
		if err := mem.Put(key, []byte("x")); err == nil {
			t.Errorf("MemStore.Put accepted bad key %q", key)
		}
	}
}

func TestHTTPPeerStoreFallsThroughDeadPeers(t *testing.T) {
	key := fp(1)
	up := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/artifact/"+key {
			w.Write([]byte("bundle-bytes"))
			return
		}
		http.NotFound(w, r)
	}))
	defer up.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused

	s := NewHTTPPeerStore([]string{dead.URL, up.URL}, up.Client())
	data, err := s.Get(key)
	if err != nil || string(data) != "bundle-bytes" {
		t.Fatalf("get through dead peer = %q, %v", data, err)
	}
	if _, err := s.Get(fp(2)); !errors.Is(err, ErrBlobNotFound) {
		t.Fatalf("missing everywhere err = %v, want ErrBlobNotFound", err)
	}
	// Put is a deliberate no-op on the peer tier.
	if err := s.Put(key, []byte("x")); err != nil {
		t.Fatalf("peer Put = %v, want nil no-op", err)
	}
}

func TestTieredGetFirstHitPutAll(t *testing.T) {
	a, b := NewMemStore(), NewMemStore()
	tiers := Tiered{a, b}
	key := fp(3)
	if err := b.Put(key, []byte("from-b")); err != nil {
		t.Fatal(err)
	}
	data, err := tiers.Get(key)
	if err != nil || string(data) != "from-b" {
		t.Fatalf("tiered get = %q, %v", data, err)
	}
	other := fp(4)
	if err := tiers.Put(other, []byte("fanout")); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatalf("fanout put landed in %d/%d tiers, want both", a.Len(), b.Len())
	}
	if _, err := tiers.Get(fp(5)); !errors.Is(err, ErrBlobNotFound) {
		t.Fatalf("tiered miss err = %v, want ErrBlobNotFound", err)
	}
}
