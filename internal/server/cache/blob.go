package cache

// The blob tier: a pluggable content-addressed byte store shared by
// fleet replicas. The in-memory Cache holds warm *commute.System
// artifacts for this process; the blob tier holds their serialized
// form (api.EncodeArtifact bundles) where any replica can reach them,
// so a cold replica adopts a peer's analysis instead of re-running it.
//
// Keys are commute.Fingerprint values — 64 lowercase hex characters —
// and every implementation rejects anything else, so a store rooted in
// a directory can never be steered outside it.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// ErrBlobNotFound is returned by BlobStore.Get for a missing key.
var ErrBlobNotFound = errors.New("blob not found")

// BlobStore is a content-addressed byte store. Implementations must be
// safe for concurrent use. Get returns ErrBlobNotFound (possibly
// wrapped) for missing keys; other errors mean the tier itself failed.
type BlobStore interface {
	Get(key string) ([]byte, error)
	Put(key string, data []byte) error
}

// validKey reports whether key is a well-formed fingerprint (64
// lowercase hex characters).
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------
// Directory store

// DirStore keeps blobs as files under a root directory, fanned into
// 256 two-hex-character subdirectories. Puts are atomic (temp file +
// rename), so replicas sharing the directory — the simplest fleet
// artifact tier — never observe a torn blob.
type DirStore struct {
	dir string
}

// NewDirStore returns a DirStore rooted at dir, creating it if needed.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &DirStore{dir: dir}, nil
}

func (s *DirStore) path(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// Get reads the blob for key.
func (s *DirStore) Get(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("bad blob key %q: %w", key, ErrBlobNotFound)
	}
	data, err := os.ReadFile(s.path(key))
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%s: %w", key, ErrBlobNotFound)
	}
	return data, err
}

// Put writes the blob atomically. A concurrent Put of the same key is
// harmless: blobs are content-addressed, so both writers carry
// identical bytes and rename is atomic either way.
func (s *DirStore) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("bad blob key %q", key)
	}
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), p)
}

// ---------------------------------------------------------------------
// Memory store

// MemStore is an in-process BlobStore for tests and in-process fleets.
type MemStore struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemStore returns an empty MemStore.
func NewMemStore() *MemStore {
	return &MemStore{m: make(map[string][]byte)}
}

// Get returns a copy of the blob for key.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.m[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%s: %w", key, ErrBlobNotFound)
	}
	return append([]byte(nil), data...), nil
}

// Put stores a copy of data under key.
func (s *MemStore) Put(key string, data []byte) error {
	if !validKey(key) {
		return fmt.Errorf("bad blob key %q", key)
	}
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	s.m[key] = cp
	s.mu.Unlock()
	return nil
}

// Len reports the number of stored blobs.
func (s *MemStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// ---------------------------------------------------------------------
// HTTP peer store

// HTTPPeerStore fetches blobs from fleet peers' /v1/artifact endpoints.
// It is read-only: replicas publish to their local/shared tier and
// peers pull on demand, so there is no write fan-out to keep
// consistent. Get tries each peer in order and returns the first
// verified hit; a peer being down just moves on to the next.
type HTTPPeerStore struct {
	peers  []string // base URLs, e.g. "http://10.0.0.2:8080"
	client *http.Client
}

// NewHTTPPeerStore returns a peer-fetch store over the given base
// URLs. client may be nil (a 2s-timeout client is used — artifact
// fetches race a local re-analysis, so slow peers must lose quickly,
// not stall the request).
func NewHTTPPeerStore(peers []string, client *http.Client) *HTTPPeerStore {
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Second}
	}
	return &HTTPPeerStore{peers: peers, client: client}
}

// Get fetches key from the first peer that has it.
func (s *HTTPPeerStore) Get(key string) ([]byte, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("bad blob key %q: %w", key, ErrBlobNotFound)
	}
	for _, peer := range s.peers {
		resp, err := s.client.Get(peer + "/v1/artifact/" + key)
		if err != nil {
			continue // peer down; try the next
		}
		data, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || rerr != nil {
			continue
		}
		return data, nil
	}
	return nil, fmt.Errorf("%s: no peer has it: %w", key, ErrBlobNotFound)
}

// Put is a no-op: peers pull, producers publish locally.
func (s *HTTPPeerStore) Put(string, []byte) error { return nil }

// ---------------------------------------------------------------------
// Tiered store

// Tiered composes stores: Get tries each in order (first hit wins),
// Put offers the blob to every tier. A typical fleet replica runs
// Tiered{DirStore, HTTPPeerStore}: the shared directory first, then
// peer fetch.
type Tiered []BlobStore

// Get returns the first tier's hit.
func (t Tiered) Get(key string) ([]byte, error) {
	var lastErr error = fmt.Errorf("%s: empty tier list: %w", key, ErrBlobNotFound)
	for _, s := range t {
		data, err := s.Get(key)
		if err == nil {
			return data, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// Put offers data to every tier; the first hard error is returned
// after all tiers were tried.
func (t Tiered) Put(key string, data []byte) error {
	var firstErr error
	for _, s := range t {
		if err := s.Put(key, data); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
