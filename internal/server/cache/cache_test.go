package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"commute"
)

// tinySystem loads a minimal real system for cache-mechanics tests
// (the cache stores *commute.System; the same instance may back many
// keys).
func tinySystem(t *testing.T) *commute.System {
	t.Helper()
	sys, err := commute.Load("tiny.mc", "void main() { print(1); }")
	if err != nil {
		t.Fatalf("load tiny system: %v", err)
	}
	return sys
}

func TestHitMiss(t *testing.T) {
	sys := tinySystem(t)
	c := New(0, nil)
	loads := 0
	load := func() (*commute.System, int64, error) {
		loads++
		return sys, 100, nil
	}

	h1, hit, err := c.GetOrLoad("k1", load)
	if err != nil || hit {
		t.Fatalf("first get: hit=%v err=%v, want miss", hit, err)
	}
	h1.Close()
	h2, hit, err := c.GetOrLoad("k1", load)
	if err != nil || !hit {
		t.Fatalf("second get: hit=%v err=%v, want hit", hit, err)
	}
	if h2.System() != sys {
		t.Fatal("hit returned a different system")
	}
	h2.Close()
	if loads != 1 {
		t.Fatalf("loader ran %d times, want 1", loads)
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("snapshot = %+v, want 1 hit / 1 miss / 1 entry / 100 bytes", st)
	}
}

func TestSingleflight(t *testing.T) {
	sys := tinySystem(t)
	c := New(0, nil)
	var loads atomic.Int64
	const goroutines = 32

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			h, _, err := c.GetOrLoad("shared", func() (*commute.System, int64, error) {
				loads.Add(1)
				time.Sleep(20 * time.Millisecond) // widen the race window
				return sys, 1, nil
			})
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			if h.System() != sys {
				t.Error("waiter saw a different system")
			}
			h.Close()
		}()
	}
	close(start)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("%d concurrent first requests ran the loader %d times, want 1", goroutines, n)
	}
	st := c.Snapshot()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("snapshot = %+v, want 1 miss and %d hits", st, goroutines-1)
	}
}

func TestErrorNotCached(t *testing.T) {
	sys := tinySystem(t)
	c := New(0, nil)
	boom := errors.New("boom")
	loads := 0

	_, _, err := c.GetOrLoad("k", func() (*commute.System, int64, error) {
		loads++
		return nil, 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("first get err = %v, want boom", err)
	}
	// The failed load left no entry; the next get loads again and can
	// succeed.
	h, hit, err := c.GetOrLoad("k", func() (*commute.System, int64, error) {
		loads++
		return sys, 1, nil
	})
	if err != nil || hit {
		t.Fatalf("retry: hit=%v err=%v, want fresh miss", hit, err)
	}
	h.Close()
	if loads != 2 {
		t.Fatalf("loader ran %d times, want 2", loads)
	}
}

func TestEvictionByByteBudget(t *testing.T) {
	sys := tinySystem(t)
	var released atomic.Int64
	c := New(250, func(*commute.System) { released.Add(1) })

	for i := 0; i < 3; i++ {
		h, _, err := c.GetOrLoad(fmt.Sprintf("k%d", i), func() (*commute.System, int64, error) {
			return sys, 100, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		h.Close()
	}
	st := c.Snapshot()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 200 {
		t.Fatalf("snapshot = %+v, want 1 eviction, 2 entries, 200 bytes", st)
	}
	if released.Load() != 1 {
		t.Fatalf("release hook ran %d times, want 1", released.Load())
	}
	// k0 was the LRU victim; k2 must still be resident.
	if _, hit, _ := c.GetOrLoad("k2", func() (*commute.System, int64, error) {
		t.Fatal("k2 should be cached")
		return nil, 0, nil
	}); !hit {
		t.Fatal("k2 evicted, want resident")
	}
}

func TestLeasedEvictionDefersRelease(t *testing.T) {
	sys := tinySystem(t)
	var released atomic.Int64
	c := New(150, func(*commute.System) { released.Add(1) })

	h0, _, err := c.GetOrLoad("k0", func() (*commute.System, int64, error) {
		return sys, 100, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Inserting k1 pushes the cache over budget and evicts k0 — but k0
	// is still leased, so its release hook must wait for Close.
	h1, _, err := c.GetOrLoad("k1", func() (*commute.System, int64, error) {
		return sys, 100, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	h1.Close()
	if st := c.Snapshot(); st.Evictions != 1 {
		t.Fatalf("snapshot = %+v, want 1 eviction", st)
	}
	if released.Load() != 0 {
		t.Fatal("release hook ran while the entry was still leased")
	}
	if h0.System() != sys {
		t.Fatal("leased system invalidated by eviction")
	}
	h0.Close()
	if released.Load() != 1 {
		t.Fatalf("release hook ran %d times after last Close, want 1", released.Load())
	}
}
