package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"commute"
)

// tinySystem loads a minimal real system for cache-mechanics tests
// (the cache stores *commute.System; the same instance may back many
// keys).
func tinySystem(t *testing.T) *commute.System {
	t.Helper()
	sys, err := commute.Load("tiny.mc", "void main() { print(1); }")
	if err != nil {
		t.Fatalf("load tiny system: %v", err)
	}
	return sys
}

func TestHitMiss(t *testing.T) {
	sys := tinySystem(t)
	c := New(0, nil)
	loads := 0
	load := func() (*commute.System, int64, error) {
		loads++
		return sys, 100, nil
	}

	h1, hit, err := c.GetOrLoad("k1", load)
	if err != nil || hit {
		t.Fatalf("first get: hit=%v err=%v, want miss", hit, err)
	}
	h1.Close()
	h2, hit, err := c.GetOrLoad("k1", load)
	if err != nil || !hit {
		t.Fatalf("second get: hit=%v err=%v, want hit", hit, err)
	}
	if h2.System() != sys {
		t.Fatal("hit returned a different system")
	}
	h2.Close()
	if loads != 1 {
		t.Fatalf("loader ran %d times, want 1", loads)
	}
	st := c.Snapshot()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 100 {
		t.Fatalf("snapshot = %+v, want 1 hit / 1 miss / 1 entry / 100 bytes", st)
	}
}

func TestSingleflight(t *testing.T) {
	sys := tinySystem(t)
	c := New(0, nil)
	var loads atomic.Int64
	const goroutines = 32

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			h, _, err := c.GetOrLoad("shared", func() (*commute.System, int64, error) {
				loads.Add(1)
				time.Sleep(20 * time.Millisecond) // widen the race window
				return sys, 1, nil
			})
			if err != nil {
				t.Errorf("get: %v", err)
				return
			}
			if h.System() != sys {
				t.Error("waiter saw a different system")
			}
			h.Close()
		}()
	}
	close(start)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("%d concurrent first requests ran the loader %d times, want 1", goroutines, n)
	}
	st := c.Snapshot()
	if st.Misses != 1 || st.Hits != goroutines-1 {
		t.Fatalf("snapshot = %+v, want 1 miss and %d hits", st, goroutines-1)
	}
}

func TestErrorNotCached(t *testing.T) {
	sys := tinySystem(t)
	c := New(0, nil)
	boom := errors.New("boom")
	loads := 0

	_, _, err := c.GetOrLoad("k", func() (*commute.System, int64, error) {
		loads++
		return nil, 0, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("first get err = %v, want boom", err)
	}
	// The failed load left no entry; the next get loads again and can
	// succeed.
	h, hit, err := c.GetOrLoad("k", func() (*commute.System, int64, error) {
		loads++
		return sys, 1, nil
	})
	if err != nil || hit {
		t.Fatalf("retry: hit=%v err=%v, want fresh miss", hit, err)
	}
	h.Close()
	if loads != 2 {
		t.Fatalf("loader ran %d times, want 2", loads)
	}
}

func TestEvictionByByteBudget(t *testing.T) {
	sys := tinySystem(t)
	var released atomic.Int64
	c := New(250, func(*commute.System) { released.Add(1) })

	for i := 0; i < 3; i++ {
		h, _, err := c.GetOrLoad(fmt.Sprintf("k%d", i), func() (*commute.System, int64, error) {
			return sys, 100, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		h.Close()
	}
	st := c.Snapshot()
	if st.Evictions != 1 || st.Entries != 2 || st.Bytes != 200 {
		t.Fatalf("snapshot = %+v, want 1 eviction, 2 entries, 200 bytes", st)
	}
	if released.Load() != 1 {
		t.Fatalf("release hook ran %d times, want 1", released.Load())
	}
	// k0 was the LRU victim; k2 must still be resident.
	if _, hit, _ := c.GetOrLoad("k2", func() (*commute.System, int64, error) {
		t.Fatal("k2 should be cached")
		return nil, 0, nil
	}); !hit {
		t.Fatal("k2 evicted, want resident")
	}
}

func TestLeasedEvictionDefersRelease(t *testing.T) {
	sys := tinySystem(t)
	var released atomic.Int64
	c := New(150, func(*commute.System) { released.Add(1) })

	h0, _, err := c.GetOrLoad("k0", func() (*commute.System, int64, error) {
		return sys, 100, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Inserting k1 pushes the cache over budget and evicts k0 — but k0
	// is still leased, so its release hook must wait for Close.
	h1, _, err := c.GetOrLoad("k1", func() (*commute.System, int64, error) {
		return sys, 100, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	h1.Close()
	if st := c.Snapshot(); st.Evictions != 1 {
		t.Fatalf("snapshot = %+v, want 1 eviction", st)
	}
	if released.Load() != 0 {
		t.Fatal("release hook ran while the entry was still leased")
	}
	if h0.System() != sys {
		t.Fatal("leased system invalidated by eviction")
	}
	h0.Close()
	if released.Load() != 1 {
		t.Fatalf("release hook ran %d times after last Close, want 1", released.Load())
	}
}

func TestPeek(t *testing.T) {
	sys := tinySystem(t)
	c := New(0, nil)
	if _, ok := c.Peek("k"); ok {
		t.Fatal("Peek hit an empty cache")
	}
	h, _, err := c.GetOrLoad("k", func() (*commute.System, int64, error) {
		return sys, 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	p, ok := c.Peek("k")
	if !ok || p.System() != sys {
		t.Fatal("Peek missed a resident entry")
	}
	p.Close()
	// Peek must never block on (or join) an in-flight load.
	loading := make(chan struct{})
	release := make(chan struct{})
	go c.GetOrLoad("slow", func() (*commute.System, int64, error) {
		close(loading)
		<-release
		return sys, 1, nil
	})
	<-loading
	if _, ok := c.Peek("slow"); ok {
		t.Fatal("Peek returned an entry still loading")
	}
	close(release)
}

func TestSingleflightErrorSharedByWaiters(t *testing.T) {
	// Every waiter coalesced onto a failing loader must observe the
	// loader's error, and the failure must not poison the key.
	sys := tinySystem(t)
	c := New(0, nil)
	boom := errors.New("boom")
	var loads atomic.Int64

	const goroutines = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			h, _, err := c.GetOrLoad("k", func() (*commute.System, int64, error) {
				loads.Add(1)
				time.Sleep(10 * time.Millisecond) // let waiters pile up
				return nil, 0, boom
			})
			if h != nil {
				t.Error("failed load produced a handle")
			}
			errs[i] = err
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("waiter %d err = %v, want boom", i, err)
		}
	}
	// Failed loads run once per stampede wave (never cached); 1 here.
	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times, want 1", n)
	}
	if st := c.Snapshot(); st.Entries != 0 {
		t.Fatalf("failed load left %d entries cached", st.Entries)
	}
	h, hit, err := c.GetOrLoad("k", func() (*commute.System, int64, error) {
		return sys, 1, nil
	})
	if err != nil || hit {
		t.Fatalf("post-failure get: hit=%v err=%v, want fresh load", hit, err)
	}
	h.Close()
}

func TestEvictionUnderConcurrentLeaseChurn(t *testing.T) {
	// Hammer a tiny cache from many goroutines so loads, hits, leased
	// evictions, and deferred releases all interleave, then check the
	// core safety property: the release hook runs exactly once per
	// evicted entry and only after its last lease closed. (Run under
	// -race this also shakes out lock-ordering bugs.)
	sys := tinySystem(t)
	var released, evictedLeases atomic.Int64
	c := New(350, func(*commute.System) { released.Add(1) })

	const goroutines = 8
	const iters = 300
	const keys = 12 // ~12 entries of 100 bytes churning a 3-entry budget
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				key := fmt.Sprintf("k%d", (g*7+i)%keys)
				h, _, err := c.GetOrLoad(key, func() (*commute.System, int64, error) {
					return sys, 100, nil
				})
				if err != nil {
					t.Errorf("get %s: %v", key, err)
					return
				}
				if h.System() != sys {
					t.Error("leased system invalid mid-churn")
					evictedLeases.Add(1)
				}
				if i%3 == 0 {
					// Hold a second lease briefly so refcounts exceed 1.
					if p, ok := c.Peek(key); ok {
						if p.System() != sys {
							t.Error("peeked system invalid mid-churn")
						}
						p.Close()
					}
				}
				h.Close()
			}
		}(g)
	}
	wg.Wait()

	st := c.Snapshot()
	if st.Bytes > 350 {
		t.Fatalf("cache over budget after churn: %d bytes", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("churn produced no evictions; the test exercised nothing")
	}
	// Every handle is closed, so every evicted entry must have released
	// exactly once: resident entries + released == total loads.
	if got, want := released.Load(), st.Evictions; got != want {
		t.Fatalf("release hook ran %d times for %d evictions", got, want)
	}
}
