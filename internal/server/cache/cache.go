// Package cache is the content-addressed artifact cache at the core of
// the commuted serving layer. Programs are keyed by the SHA-256 of
// their (source, dialect options) pair — commute.Fingerprint — and a
// hit reuses the warm *commute.System, skipping parse, type check,
// commutativity analysis, codegen, slot resolution, and closure
// compilation entirely.
//
// Three production properties:
//
//   - Singleflight loading: N concurrent first requests for one key
//     cost one load; the N-1 waiters block on the loader's entry and
//     share its result (or its error — failed loads are not cached).
//
//   - Bounded memory: entries carry a byte-size estimate and an LRU
//     list; inserting past the budget evicts cold entries.
//
//   - Leased eviction: callers hold entries through refcounted Handles.
//     Evicting an entry removes it from the index immediately, but the
//     release hook (which tears down the program's per-program
//     resolution caches — see commute.System.Release) runs only when
//     the last lease closes, so an in-flight request never races a
//     cache rebuild.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"commute"
)

// Cache is a content-addressed LRU of loaded systems. The zero value is
// not usable; call New.
type Cache struct {
	mu      sync.Mutex
	max     int64 // byte budget (<=0: unbounded)
	bytes   int64
	entries map[string]*entry
	ll      *list.List // front = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// onRelease runs when an evicted entry's last lease closes (and
	// immediately at eviction for unleased entries).
	onRelease func(*commute.System)
}

type entry struct {
	key   string
	elem  *list.Element
	bytes int64

	refs    int // open leases
	evicted bool

	ready chan struct{} // closed once the load completes
	built bool          // guarded by Cache.mu; true once ready is closed
	sys   *commute.System
	err   error
}

// New returns a cache bounded to maxBytes (<=0: unbounded). onRelease,
// if non-nil, is invoked once per evicted entry after its last lease
// closes — the serving layer passes (*commute.System).Release to drop
// the program's resolution and compiled-closure caches.
func New(maxBytes int64, onRelease func(*commute.System)) *Cache {
	return &Cache{
		max:       maxBytes,
		entries:   make(map[string]*entry),
		ll:        list.New(),
		onRelease: onRelease,
	}
}

// Handle is a lease on a cache entry. The System stays valid until
// Close; Close must be called exactly once.
type Handle struct {
	c *Cache
	e *entry
}

// System returns the leased system.
func (h *Handle) System() *commute.System { return h.e.sys }

// Close releases the lease. If the entry was evicted while leased, the
// last Close runs the release hook.
func (h *Handle) Close() {
	c, e := h.c, h.e
	c.mu.Lock()
	e.refs--
	fire := e.refs == 0 && e.evicted && e.err == nil
	c.mu.Unlock()
	if fire && c.onRelease != nil {
		c.onRelease(e.sys)
	}
}

// Peek returns a lease on key's entry when it is already loaded,
// without triggering a load or blocking on one in flight. It lets the
// serving layer prefer the warm in-memory system over the blob tier
// while falling through to artifact adoption (rather than a full
// pipeline run) when the system is absent.
func (c *Cache) Peek(key string) (*Handle, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok || !e.built || e.err != nil {
		return nil, false
	}
	e.refs++
	c.ll.MoveToFront(e.elem)
	c.hits.Add(1)
	return &Handle{c: c, e: e}, true
}

// GetOrLoad returns a lease on the system for key, loading it with load
// on a miss. load returns the system and its retained-size estimate in
// bytes. hit reports whether this request was served without running
// load (a cached entry, or a singleflight wait on a concurrent loader).
// On error no entry is cached and the error is shared with every
// concurrent waiter.
func (c *Cache) GetOrLoad(key string, load func() (*commute.System, int64, error)) (h *Handle, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		e.refs++
		c.ll.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The loader failed; it already removed the entry.
			c.mu.Lock()
			e.refs--
			c.mu.Unlock()
			return nil, true, e.err
		}
		c.hits.Add(1)
		return &Handle{c: c, e: e}, true, nil
	}

	// Miss: this goroutine is the loader.
	e := &entry{key: key, refs: 1, ready: make(chan struct{})}
	e.elem = c.ll.PushFront(e)
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	sys, size, lerr := load()

	c.mu.Lock()
	if lerr != nil {
		e.err = lerr
		e.refs--
		c.removeLocked(e)
		e.built = true
		close(e.ready)
		c.mu.Unlock()
		return nil, false, lerr
	}
	e.sys, e.bytes = sys, size
	c.bytes += size
	e.built = true
	close(e.ready)
	released := c.evictOverBudgetLocked()
	c.mu.Unlock()
	c.release(released)
	return &Handle{c: c, e: e}, false, nil
}

// removeLocked unlinks an entry from the index and LRU list.
func (c *Cache) removeLocked(e *entry) {
	if e.elem != nil {
		c.ll.Remove(e.elem)
		e.elem = nil
	}
	delete(c.entries, e.key)
}

// evictOverBudgetLocked evicts cold built entries until the budget is
// met, returning the systems whose release hook should run now (their
// refcount already reached zero). Entries still loading are skipped;
// entries still leased are unlinked now and released by the last Close.
func (c *Cache) evictOverBudgetLocked() []*commute.System {
	if c.max <= 0 {
		return nil
	}
	var released []*commute.System
	for c.bytes > c.max {
		var victim *entry
		for el := c.ll.Back(); el != nil; el = el.Prev() {
			cand := el.Value.(*entry)
			if cand.built && !cand.evicted {
				victim = cand
				break
			}
		}
		if victim == nil {
			return released // everything left is loading or evicted
		}
		victim.evicted = true
		c.bytes -= victim.bytes
		c.removeLocked(victim)
		c.evictions.Add(1)
		if victim.refs == 0 && victim.err == nil {
			released = append(released, victim.sys)
		}
	}
	return released
}

func (c *Cache) release(systems []*commute.System) {
	if c.onRelease == nil {
		return
	}
	for _, s := range systems {
		c.onRelease(s)
	}
}

// Stats is a counter snapshot.
type Stats struct {
	Hits, Misses, Evictions int64
	Entries                 int64
	Bytes                   int64
}

// Snapshot returns the cache's current counters.
func (c *Cache) Snapshot() Stats {
	c.mu.Lock()
	entries := int64(len(c.entries))
	bytes := c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}
