// Package server is the commuted serving layer: a long-running HTTP
// daemon exposing the whole pipeline — commutativity analysis
// (/v1/analyze), hardened serial/parallel execution (/v1/run), and
// simulated-multiprocessor speedups (/v1/simulate) — over a
// content-addressed artifact cache (see package
// commute/internal/server/cache).
//
// The serving layer is production-shaped:
//
//   - Admission control: a bounded worker pool plus a bounded wait
//     queue; past both, requests shed with 429 + Retry-After instead
//     of growing memory without bound.
//   - Per-request deadlines threaded into RunSerialContext /
//     RunParallelOpts (PR 1 semantics: a caller timeout never triggers
//     serial fallback).
//   - Per-request output caps: a runaway program's print output is
//     truncated at a byte budget, never buffered unboundedly.
//   - Panic isolation per request: a panic becomes one 500, not a dead
//     daemon.
//   - Observability: /healthz for liveness and /statusz for the
//     counter set (requests, cache hits/misses/evictions, in-flight,
//     queue depth, load sheds, fallbacks, p50/p99 per endpoint).
//
// Graceful drain is the embedder's job: cmd/commuted calls SetDraining
// and then http.Server.Shutdown on SIGTERM, which stops new
// connections and waits for in-flight requests to finish.
package server

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"commute"
	"commute/internal/apps/src"
	"commute/internal/cond"
	"commute/internal/core"
	"commute/internal/interp"
	"commute/internal/rt"
	"commute/internal/server/api"
	"commute/internal/server/cache"
)

// Config shapes the serving layer. Zero fields take the documented
// defaults.
type Config struct {
	// Workers bounds concurrently executing requests (default:
	// GOMAXPROCS).
	Workers int
	// Queue bounds requests waiting for a worker slot beyond Workers;
	// past it the server sheds load with 429 (default 64). Negative:
	// no waiting, shed as soon as every worker is busy.
	Queue int
	// CacheBytes is the artifact cache budget (default 256 MiB).
	CacheBytes int64
	// MaxOutputBytes caps one request's program output (default 1 MiB).
	MaxOutputBytes int64
	// DefaultTimeout bounds an execution when the request doesn't ask
	// for a deadline (default 10s); MaxTimeout is the ceiling a request
	// can ask for (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxSourceBytes caps a request body (default 4 MiB).
	MaxSourceBytes int64
	// RetryAfter is the client backoff hint sent with 429s (default 1s).
	RetryAfter time.Duration
	// AnalysisWorkers bounds the goroutines a cold load's commutativity
	// analysis fans out across (0: GOMAXPROCS, 1: serial driver). Purely
	// a latency knob — analysis results are identical at every worker
	// count — so it is not part of the cache key.
	AnalysisWorkers int
	// Speculate is the default speculation policy for /v1/run requests
	// that don't set the field themselves: "off" (default), "auto", or
	// "force" (see rt.SpecMode).
	Speculate string
	// SpeculateThreshold is the default minimum analysis confidence for
	// "auto" speculation (0: rt.DefaultSpecThreshold).
	SpeculateThreshold float64
	// Blobs is the shared artifact tier (fleet deployments: a directory
	// shared by replicas, a peer-fetch store, or both tiered). After a
	// cold load the replica publishes the program's serialized analysis
	// to it; on a miss it adopts a peer's bundle instead of re-running
	// the analysis. Nil disables the tier.
	Blobs cache.BlobStore
	// BatchLinger coalesces same-fingerprint /v1/analyze requests: a
	// request arriving while an identical one is in flight — or within
	// this window after it completed — is answered with the same
	// serialized response bytes without re-entering the handler.
	// 0 means the 2ms default; negative disables batching.
	BatchLinger time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Queue == 0 {
		c.Queue = 64
	}
	if c.Queue < 0 {
		c.Queue = 0
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxOutputBytes == 0 {
		c.MaxOutputBytes = 1 << 20
	}
	if c.DefaultTimeout == 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout == 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxSourceBytes == 0 {
		c.MaxSourceBytes = 4 << 20
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = time.Second
	}
	if c.BatchLinger == 0 {
		c.BatchLinger = 2 * time.Millisecond
	}
	return c
}

// Server is the commuted HTTP service. Create with New; serve
// Handler().
type Server struct {
	cfg   Config
	cache *cache.Cache
	mux   *http.ServeMux
	start time.Time

	slots    chan struct{} // worker tokens
	queued   atomic.Int64
	inflight atomic.Int64

	requests    atomic.Int64
	rejected    atomic.Int64
	panics      atomic.Int64
	fallbacks   atomic.Int64
	specCommits atomic.Int64
	specAborts  atomic.Int64
	guardPar    atomic.Int64
	guardSer    atomic.Int64
	draining    atomic.Bool

	// Shared artifact tier (see artifact.go).
	blobs     cache.BlobStore
	adoptions atomic.Int64
	published atomic.Int64
	artMu     sync.Mutex
	artMap    map[string]*list.Element
	artLL     *list.List
	nameMu    sync.Mutex
	names     map[string]string
	// Cross-request response batching (see batch.go).
	batch     *batcher
	coalesced atomic.Int64

	lat map[string]*latencyRecorder
}

// New returns a server with the given configuration.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		cache: cache.New(cfg.CacheBytes, func(sys *commute.System) { sys.Release() }),
		mux:   http.NewServeMux(),
		start: time.Now(),
		slots: make(chan struct{}, cfg.Workers),
		lat: map[string]*latencyRecorder{
			"analyze":  {},
			"run":      {},
			"simulate": {},
			// Program-load latency, split by cache outcome: load-cold is
			// the full pipeline (parse → analysis → codegen → warm),
			// load-warm a cache hit, load-adopt a peer artifact decoded
			// from the blob tier instead of re-analyzed. The cold↔warm
			// gap is what the parallel analysis driver buys; the
			// cold↔adopt gap is what the fleet artifact tier buys.
			"load-cold":  {},
			"load-warm":  {},
			"load-adopt": {},
		},
	}
	s.initArtifacts(cfg.Blobs)
	s.batch = newBatcher(cfg.BatchLinger)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statusz", s.handleStatusz)
	s.mux.HandleFunc("GET /v1/artifact/{key}", s.handleArtifact)
	s.mux.HandleFunc("POST /v1/analyze", s.guard("analyze", s.handleAnalyze))
	s.mux.HandleFunc("POST /v1/run", s.guard("run", s.handleRun))
	s.mux.HandleFunc("POST /v1/simulate", s.guard("simulate", s.handleSimulate))
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the artifact cache (load harness, tests).
func (s *Server) Cache() *cache.Cache { return s.cache }

// SetDraining flips /healthz to 503 so load balancers stop routing new
// work while in-flight requests finish. Call before http.Server.Shutdown.
func (s *Server) SetDraining() { s.draining.Store(true) }

// ---------------------------------------------------------------------
// Admission control and request guarding

// admit acquires a worker slot, waiting in the bounded queue if every
// worker is busy. It reports false when the queue is full (shed with
// 429) or the client went away while queued.
func (s *Server) admit(ctx context.Context) (release func(), ok bool) {
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, true
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.Queue) {
		s.queued.Add(-1)
		return nil, false
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, true
	case <-ctx.Done():
		return nil, false
	}
}

// guard wraps an endpoint with admission control, panic isolation, and
// latency accounting.
func (s *Server) guard(name string, h func(w http.ResponseWriter, r *http.Request) error) http.HandlerFunc {
	rec := s.lat[name]
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(1)
		release, ok := s.admit(r.Context())
		if !ok {
			s.rejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			writeErr(w, http.StatusTooManyRequests, "server at capacity, retry later")
			return
		}
		defer release()
		s.inflight.Add(1)
		defer s.inflight.Add(-1)

		start := time.Now()
		var err error
		func() {
			defer func() {
				if p := recover(); p != nil {
					s.panics.Add(1)
					err = fmt.Errorf("panic: %v", p)
					writeErr(w, http.StatusInternalServerError, "internal error")
				}
			}()
			err = h(w, r)
		}()
		rec.record(time.Since(start), err != nil)
	}
}

// ---------------------------------------------------------------------
// Program loading through the artifact cache

// appSource maps a built-in application name to its source. The
// "quickstart" alias serves the §2 running example (the graph
// traversal), matching examples/quickstart.
func appSource(app string) (name, source string, ok bool) {
	switch app {
	case "barneshut":
		return "barneshut.mc", src.BarnesHut, true
	case "water":
		return "water.mc", src.Water, true
	case "graph", "quickstart":
		return "graph.mc", src.Graph, true
	case "specdisjoint":
		return "specdisjoint.mc", src.SpecDisjoint, true
	case "specconflict":
		return "specconflict.mc", src.SpecConflict, true
	case "condhash":
		// Guard-true mode: the table accumulates, the synthesized guard
		// (mode == 0) holds, and guarded regions run in parallel.
		return "condhash.mc", src.CondHashBase + src.CondHashMain(0, 6), true
	case "condhash-serial":
		// Guard-false mode: the table overwrites, the guard fails at
		// region entry, and every guarded region takes the serial path.
		return "condhash-serial.mc", src.CondHashBase + src.CondHashMain(3, 6), true
	}
	return "", "", false
}

// systemSize estimates the retained bytes of a loaded system (AST,
// types, analysis reports, codegen plan, slot resolution, compiled
// closures) for the cache's byte accounting. The structures are all
// roughly proportional to the source text, with a fixed floor for the
// per-program tables.
func systemSize(source string) int64 {
	return int64(len(source))*48 + 64<<10
}

// FingerprintRequest computes the routing/cache key for a request the
// same way every replica does. The fleet router calls it so a program
// always lands on the shard that owns its fingerprint; AnalysisWorkers
// never enters the key, so router and replicas agree regardless of
// their worker configuration.
func FingerprintRequest(req api.SourceRequest) (string, error) {
	name, source, opts, err := resolveSourceRequest(req, 0)
	if err != nil {
		return "", err
	}
	return commute.Fingerprint(name, source, opts), nil
}

// resolveSource maps a request to its (name, source, load options)
// triple without loading anything. Fingerprinting the triple is what
// the batcher and the fleet router key on, so it must be cheap and
// deterministic.
func (s *Server) resolveSource(req api.SourceRequest) (string, string, commute.LoadOptions, error) {
	return resolveSourceRequest(req, s.cfg.AnalysisWorkers)
}

func resolveSourceRequest(req api.SourceRequest, analysisWorkers int) (name, source string, opts commute.LoadOptions, err error) {
	name, source = req.Name, req.Source
	if req.App != "" {
		var ok bool
		if name, source, ok = appSource(req.App); !ok {
			return "", "", opts, fmt.Errorf("unknown app %q (have barneshut, water, graph, quickstart, specdisjoint, specconflict, condhash, condhash-serial)", req.App)
		}
	}
	if source == "" {
		return "", "", opts, errors.New("request needs source or app")
	}
	if name == "" {
		name = "request.mc"
	}
	opts = commute.LoadOptions{
		Transform:       req.Options.Transform,
		AnalysisWorkers: analysisWorkers,
	}
	return name, source, opts, nil
}

// loadSystemKeyed resolves a fingerprinted program through the cache.
// The returned handle must be Closed when the request is done with the
// system. A cold load publishes its artifact to the blob tier so fleet
// peers can adopt the analysis instead of repeating it.
func (s *Server) loadSystemKeyed(name, source string, opts commute.LoadOptions, key string) (h *cache.Handle, hit bool, err error) {
	start := time.Now()
	h, hit, err = s.cache.GetOrLoad(key, func() (*commute.System, int64, error) {
		sys, lerr := commute.LoadOpts(name, source, opts)
		if lerr != nil {
			return nil, 0, lerr
		}
		// Pay the lazy costs (slot resolution, closure compilation) now
		// so every request against this entry — including this one —
		// executes fully warm.
		sys.Warm()
		return sys, systemSize(source), nil
	})
	if rec := s.lat[loadWord(hit)]; rec != nil {
		rec.record(time.Since(start), err != nil)
	}
	if err == nil && !hit {
		s.rememberName(key, name)
		s.publishArtifact(key, name, h.System())
	}
	return h, hit, err
}

// loadSystem is the resolve→fingerprint→load composition used by the
// endpoints that need the live system (/v1/run, /v1/simulate).
func (s *Server) loadSystem(req api.SourceRequest) (h *cache.Handle, key string, hit bool, err error) {
	name, source, opts, rerr := s.resolveSource(req)
	if rerr != nil {
		return nil, "", false, rerr
	}
	// Fingerprint ignores AnalysisWorkers: it changes only load
	// latency, never the loaded System.
	key = commute.Fingerprint(name, source, opts)
	h, hit, err = s.loadSystemKeyed(name, source, opts, key)
	return h, key, hit, err
}

func loadWord(hit bool) string {
	if hit {
		return "load-warm"
	}
	return "load-cold"
}

func cacheWord(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// ---------------------------------------------------------------------
// Endpoints

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	cs := s.cache.Snapshot()
	st := api.StatusZ{
		UptimeSec:  time.Since(s.start).Seconds(),
		Requests:   s.requests.Load(),
		InFlight:   s.inflight.Load(),
		QueueDepth: s.queued.Load(),
		Rejected:   s.rejected.Load(),
		Panics:     s.panics.Load(),
		Fallbacks:  s.fallbacks.Load(),

		SpeculationCommits: s.specCommits.Load(),
		SpeculationAborts:  s.specAborts.Load(),
		GuardParallel:      s.guardPar.Load(),
		GuardSerial:        s.guardSer.Load(),
		CacheHits:          cs.Hits,
		CacheMisses:        cs.Misses,
		CacheEvictions:     cs.Evictions,
		CacheEntries:       cs.Entries,
		CacheBytes:         cs.Bytes,
		CacheAdoptions:     s.adoptions.Load(),
		ArtifactsPublished: s.published.Load(),
		BatchCoalesced:     s.coalesced.Load(),
		Endpoints:          make(map[string]api.EndpointStats, len(s.lat)),
	}
	for name, rec := range s.lat {
		st.Endpoints[name] = rec.snapshot()
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	var req api.AnalyzeRequest
	if err := s.readJSON(w, r, &req); err != nil {
		return err
	}
	name, source, opts, err := s.resolveSource(req.SourceRequest)
	if err != nil {
		return writeErr(w, http.StatusUnprocessableEntity, err.Error())
	}
	key := commute.Fingerprint(name, source, opts)

	// Batch: concurrent (or just-completed, within the linger window)
	// requests for one (fingerprint, emit) pair share one serialized
	// response. The batch key includes every field that shapes the body.
	batchKey := key + "|emit=" + strconv.FormatBool(req.Emit)
	call, leader := s.batch.join(batchKey)
	if !leader {
		return s.awaitBatch(w, r, call)
	}

	// Leader: compute the response bytes, publish them to the batch —
	// unconditionally, or followers hang until their clients give up —
	// then write them as our own response.
	finished := false
	defer func() {
		if !finished {
			body, _ := json.Marshal(api.Error{Error: "internal error"})
			s.batch.finish(batchKey, call, http.StatusInternalServerError, body)
		}
	}()
	code, body, err := s.analyzeResult(req, name, source, opts, key, start)
	finished = true
	s.batch.finish(batchKey, call, code, body)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
	return err
}

// awaitBatch serves a coalesced follower: block until the leader
// finishes (or the client goes away), then replay its bytes.
func (s *Server) awaitBatch(w http.ResponseWriter, r *http.Request, c *batchCall) error {
	select {
	case <-c.done:
	case <-r.Context().Done():
		return r.Context().Err()
	}
	s.coalesced.Add(1)
	if rec := s.lat["analyze"]; rec != nil {
		rec.coalesce()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(c.code)
	w.Write(c.body)
	if c.code >= 400 {
		return fmt.Errorf("coalesced onto failed leader (status %d)", c.code)
	}
	return nil
}

// analyzeResult computes the /v1/analyze response as (status, body),
// trying the three serving tiers in cost order: the warm in-memory
// system, an adopted fleet artifact, then the full analysis pipeline.
func (s *Server) analyzeResult(req api.AnalyzeRequest, name, source string, opts commute.LoadOptions, key string, start time.Time) (int, []byte, error) {
	if h, ok := s.cache.Peek(key); ok {
		loadStart := time.Now()
		resp := analyzeFromSystem(h.System(), key, "hit", req.Emit, start)
		h.Close()
		if rec := s.lat["load-warm"]; rec != nil {
			rec.record(time.Since(loadStart), false)
		}
		return jsonBody(http.StatusOK, resp)
	}
	if s.blobs != nil {
		loadStart := time.Now()
		if b, ok := s.adoptArtifact(key); ok {
			if rec := s.lat["load-adopt"]; rec != nil {
				rec.record(time.Since(loadStart), false)
			}
			return jsonBody(http.StatusOK, analyzeFromBundle(b, key, "adopt", req.Emit, start))
		}
	}
	h, hit, err := s.loadSystemKeyed(name, source, opts, key)
	if err != nil {
		return errBody(http.StatusUnprocessableEntity, err.Error())
	}
	defer h.Close()
	return jsonBody(http.StatusOK, analyzeFromSystem(h.System(), key, cacheWord(hit), req.Emit, start))
}

// analyzeFromSystem renders the analyze response from a live system.
func analyzeFromSystem(sys *commute.System, key, cacheWord string, emit bool, start time.Time) api.AnalyzeResponse {
	resp := api.AnalyzeResponse{
		Key:             key,
		Cache:           cacheWord,
		ParallelMethods: sys.ParallelMethods(),
		LoopsFound:      sys.Plan.LoopsFound,
		LoopsSuppressed: sys.Plan.LoopsSuppressed,
	}
	for _, mr := range sys.Reports() {
		resp.Methods = append(resp.Methods, apiMethodReport(mr))
	}
	if emit && sys.File != nil {
		resp.ParallelSource = sys.Plan.EmitParallelSource(sys.File)
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp
}

// apiMethodReport renders one analysis report in the wire schema,
// including the synthesized conditional-commutativity predicate in
// both rendered and structured form.
func apiMethodReport(mr *core.MethodReport) api.MethodReport {
	return api.MethodReport{
		Method:             mr.Method.FullName(),
		Parallel:           mr.Parallel,
		Reason:             mr.Reason,
		ExtentSize:         mr.ExtentSize,
		AuxiliaryCallSites: mr.AuxiliaryCallSites,
		IndependentPairs:   mr.IndependentPairs,
		SymbolicPairs:      mr.SymbolicPairs,

		Confidence:          mr.Confidence,
		Condition:           mr.Condition,
		ConditionTree:       api.CondTree(mr.Pred),
		Guard:               cond.Render(mr.Guard),
		GuardTree:           api.CondTree(mr.Guard),
		ConditionalEligible: mr.ConditionalEligible,
		SpeculationEligible: mr.SpeculationEligible,
	}
}

// jsonBody serializes a response value to (status, body) for batching.
func jsonBody(code int, v any) (int, []byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		eb, _ := json.Marshal(api.Error{Error: "encode response: " + err.Error()})
		return http.StatusInternalServerError, eb, err
	}
	return code, b, nil
}

// errBody is jsonBody for the error envelope; the returned error makes
// the guard count the request as failed.
func errBody(code int, msg string) (int, []byte, error) {
	b, _ := json.Marshal(api.Error{Error: msg})
	return code, b, errors.New(msg)
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) error {
	var req api.RunRequest
	if err := s.readJSON(w, r, &req); err != nil {
		return err
	}
	mode := req.Mode
	if mode == "" {
		mode = "parallel"
	}
	if mode != "serial" && mode != "parallel" {
		return writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q (serial | parallel)", req.Mode))
	}
	eng, ok := interp.ParseEngine(req.Engine)
	if !ok {
		return writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown engine %q (compiled | walk)", req.Engine))
	}
	var sched rt.SchedMode
	switch req.Sched {
	case "", "stealing":
		sched = rt.SchedStealing
	case "central":
		sched = rt.SchedCentral
	default:
		return writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown scheduler %q (stealing | central)", req.Sched))
	}
	workers := req.Workers
	if workers <= 0 {
		workers = 4
	}
	if mode == "serial" && req.MaxSteps > 0 {
		// The step budget lives in the parallel runtime; reject rather
		// than silently ignore the bound.
		return writeErr(w, http.StatusBadRequest, "max_steps requires mode=parallel")
	}
	// Speculation policy: the request field overrides the server default.
	specWord := req.Speculate
	if specWord == "" {
		specWord = s.cfg.Speculate
	}
	spec, ok := rt.ParseSpecMode(specWord)
	if !ok {
		return writeErr(w, http.StatusBadRequest, fmt.Sprintf("unknown speculate %q (off | auto | force)", req.Speculate))
	}
	specThreshold := req.SpeculateThreshold
	if specThreshold == 0 {
		specThreshold = s.cfg.SpeculateThreshold
	}
	if mode == "serial" && spec != rt.SpecOff {
		return writeErr(w, http.StatusBadRequest, "speculate requires mode=parallel")
	}
	if mode == "serial" && req.Conditional {
		return writeErr(w, http.StatusBadRequest, "conditional requires mode=parallel")
	}

	h, key, hit, err := s.loadSystem(req.SourceRequest)
	if err != nil {
		return writeErr(w, http.StatusUnprocessableEntity, err.Error())
	}
	defer h.Close()
	sys := h.System()

	// Per-request deadline, clamped to the server ceiling and derived
	// from the connection context so a vanished client cancels the run.
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	out := newCappedWriter(s.cfg.MaxOutputBytes)
	start := time.Now()
	stats := api.RunStats{Mode: mode, Engine: eng.String(), Workers: workers}
	var runErr error
	if mode == "serial" {
		_, runErr = sys.RunSerialEngineContext(ctx, eng, out)
	} else {
		stats.Sched = req.Sched
		if stats.Sched == "" {
			stats.Sched = "stealing"
		}
		var rs *rt.Stats
		_, rs, runErr = sys.RunParallelOpts(ctx, commute.RunOptions{
			Workers:            workers,
			SerialFallback:     req.Fallback,
			MaxSteps:           req.MaxSteps,
			Sched:              sched,
			Engine:             eng,
			Speculate:          spec,
			SpeculateThreshold: specThreshold,
			Conditional:        req.Conditional,
		}, out)
		if rs != nil {
			stats.Regions = rs.Regions
			stats.ParallelLoops = rs.ParallelLoops
			stats.Chunks = rs.Chunks
			stats.Iterations = rs.Iterations
			stats.Tasks = rs.Tasks
			stats.LazyInlines = rs.LazyInlines
			stats.LockAcquires = rs.LockAcquires
			stats.Steals = rs.Steals
			stats.LocalPops = rs.LocalPops
			stats.TaskPanics = rs.TaskPanics
			stats.SerialFallbacks = rs.SerialFallbacks
			stats.SpeculativeRegions = rs.SpeculativeRegions
			stats.SpeculationCommits = rs.SpeculationCommits
			stats.SpeculationAborts = rs.SpeculationAborts
			stats.GuardParallel = rs.GuardParallel
			stats.GuardSerial = rs.GuardSerial
			s.fallbacks.Add(rs.SerialFallbacks)
			s.specCommits.Add(rs.SpeculationCommits)
			s.specAborts.Add(rs.SpeculationAborts)
			s.guardPar.Add(rs.GuardParallel)
			s.guardSer.Add(rs.GuardSerial)
		}
	}
	stats.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	if runErr != nil {
		code := http.StatusUnprocessableEntity
		if errors.Is(runErr, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		}
		return writeErr(w, code, runErr.Error())
	}
	return writeJSON(w, http.StatusOK, api.RunResponse{
		Key:             key,
		Cache:           cacheWord(hit),
		Output:          out.String(),
		OutputTruncated: out.Truncated(),
		Stats:           stats,
	})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) error {
	start := time.Now()
	var req api.SimulateRequest
	if err := s.readJSON(w, r, &req); err != nil {
		return err
	}
	procs := req.Procs
	if len(procs) == 0 {
		procs = []int{1, 2, 4, 8, 16, 32}
	}
	if len(procs) > 64 {
		return writeErr(w, http.StatusBadRequest, "at most 64 processor counts per request")
	}
	for _, p := range procs {
		if p < 1 || p > 4096 {
			return writeErr(w, http.StatusBadRequest, fmt.Sprintf("processor count %d out of range [1, 4096]", p))
		}
	}

	h, key, hit, err := s.loadSystem(req.SourceRequest)
	if err != nil {
		return writeErr(w, http.StatusUnprocessableEntity, err.Error())
	}
	defer h.Close()
	sys := h.System()

	tr, err := sys.Trace()
	if err != nil {
		return writeErr(w, http.StatusUnprocessableEntity, err.Error())
	}
	resp := api.SimulateResponse{Key: key, Cache: cacheWord(hit)}
	var base float64
	for _, p := range procs {
		res := commute.Simulate(tr, p)
		if base == 0 {
			base = res.TimeMicros
		}
		speedup := 0.0
		if res.TimeMicros > 0 {
			speedup = base / res.TimeMicros
		}
		resp.Results = append(resp.Results, api.SimPoint{
			Procs:         p,
			TimeMicros:    res.TimeMicros,
			Speedup:       speedup,
			BlockedMicros: res.Breakdown.Blocked,
		})
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return writeJSON(w, http.StatusOK, resp)
}

// ---------------------------------------------------------------------
// Helpers

// readJSON decodes the request body with the size cap applied. On
// failure it writes a 400 and returns the error.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, s.cfg.MaxSourceBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return writeErr(w, http.StatusBadRequest, "bad request body: "+err.Error())
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	return json.NewEncoder(w).Encode(v)
}

// writeErr writes the JSON error envelope and returns an error carrying
// the message, so guarded handlers can `return writeErr(...)` and have
// the request counted as failed.
func writeErr(w http.ResponseWriter, code int, msg string) error {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(api.Error{Error: msg})
	return errors.New(msg)
}

// cappedWriter buffers program output up to a byte budget and discards
// the rest, so a print-heavy runaway program cannot grow the daemon's
// heap: past the cap, writes cost nothing and the response marks the
// output truncated.
type cappedWriter struct {
	mu        sync.Mutex
	buf       []byte
	limit     int64
	truncated bool
}

func newCappedWriter(limit int64) *cappedWriter {
	return &cappedWriter{limit: limit}
}

// Write is safe for concurrent use: parallel-mode programs print from
// many worker goroutines.
func (cw *cappedWriter) Write(p []byte) (int, error) {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	room := cw.limit - int64(len(cw.buf))
	if room <= 0 {
		cw.truncated = true
		return len(p), nil
	}
	if int64(len(p)) > room {
		cw.buf = append(cw.buf, p[:room]...)
		cw.truncated = true
		return len(p), nil
	}
	cw.buf = append(cw.buf, p...)
	return len(p), nil
}

func (cw *cappedWriter) String() string {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return string(cw.buf)
}

func (cw *cappedWriter) Truncated() bool {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	return cw.truncated
}
