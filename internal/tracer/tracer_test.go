package tracer_test

import (
	"testing"

	"commute/internal/apps/src"
	"commute/internal/codegen"
	"commute/internal/core"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
	"commute/internal/interp"
	"commute/internal/tracer"
)

func setup(t *testing.T, source string) (*types.Program, *codegen.Plan) {
	t.Helper()
	f, err := parser.Parse("app.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return prog, codegen.Build(core.New(prog))
}

// TestUnitConservation: the trace accounts for (essentially) the work
// the serial interpreter charges — partitioning the execution into
// phases and tasks neither creates nor loses cost. The two execution
// strategies differ slightly in loop-header bookkeeping (a parallel
// loop evaluates its bound once instead of re-evaluating the condition
// per iteration, and the dispatcher probes counted-loop headers), so
// we allow 1.5%.
func TestUnitConservation(t *testing.T) {
	for _, source := range []string{src.Graph, src.BarnesHut, src.Water} {
		prog, plan := setup(t, source)

		ipSerial := interp.New(prog, nil)
		ctx := ipSerial.NewCtx()
		if err := ipSerial.Run(ctx); err != nil {
			t.Fatalf("serial: %v", err)
		}
		serialUnits := ctx.Cost

		ipTrace := interp.New(prog, nil)
		tr, err := tracer.Collect(ipTrace, plan)
		if err != nil {
			t.Fatalf("collect: %v", err)
		}
		traced := tr.SerialUnits() + tr.ParallelUnits()
		diff := float64(traced-serialUnits) / float64(serialUnits)
		if diff < 0 {
			diff = -diff
		}
		if diff > 0.015 {
			t.Errorf("units: traced %d vs serial %d (%.2f%% off)", traced, serialUnits, 100*diff)
		}
	}
}

// TestCritEventsWellFormed: critical sections have positive duration
// and real object identities; loops contain no spawn events (mutex
// semantics).
func TestCritEventsWellFormed(t *testing.T) {
	prog, plan := setup(t, src.Water)
	ip := interp.New(prog, nil)
	tr, err := tracer.Collect(ip, plan)
	if err != nil {
		t.Fatal(err)
	}
	var crits, loops int
	var walk func(task *tracer.Task, inLoop bool)
	walk = func(task *tracer.Task, inLoop bool) {
		for _, e := range task.Events {
			switch e.Kind {
			case tracer.EvCrit:
				crits++
				if e.Obj == 0 {
					t.Fatal("crit with zero object id")
				}
				if e.Units < 0 {
					t.Fatal("negative crit duration")
				}
			case tracer.EvSpawn:
				if inLoop {
					t.Fatal("spawn inside a parallel-loop iteration (mutex semantics violated)")
				}
				walk(e.Child, inLoop)
			case tracer.EvLoop:
				loops++
				for _, it := range e.Iters {
					walk(it, true)
				}
			}
		}
	}
	for _, ph := range tr.Phases {
		if ph.Root != nil {
			walk(ph.Root, false)
		}
	}
	if crits == 0 {
		t.Error("no critical sections recorded for Water")
	}
	if loops != 10 { // 5 phases × 2 steps
		t.Errorf("parallel loops = %d, want 10", loops)
	}
}

// TestTracerDeterministic: collecting twice yields identical structure.
func TestTracerDeterministic(t *testing.T) {
	prog, plan := setup(t, src.BarnesHut)
	sig := func() (int, int64, int64) {
		ip := interp.New(prog, nil)
		tr, err := tracer.Collect(ip, plan)
		if err != nil {
			t.Fatal(err)
		}
		return len(tr.Phases), tr.SerialUnits(), tr.ParallelUnits()
	}
	p1, s1, u1 := sig()
	p2, s2, u2 := sig()
	if p1 != p2 || s1 != s2 || u1 != u2 {
		t.Errorf("nondeterministic trace: (%d,%d,%d) vs (%d,%d,%d)", p1, s1, u1, p2, s2, u2)
	}
}
