package tracer_test

import (
	"reflect"
	"testing"

	"commute/internal/apps/src"
	"commute/internal/interp"
	"commute/internal/simdash"
	"commute/internal/tracer"
)

// canonicalizeObjIDs renumbers every Event.Obj in first-seen traversal
// order so traces from different interpreter instances compare equal.
func canonicalizeObjIDs(tr *tracer.Trace) {
	ids := map[int64]int64{}
	var renumber func(tk *tracer.Task)
	renumber = func(tk *tracer.Task) {
		if tk == nil {
			return
		}
		for i := range tk.Events {
			e := &tk.Events[i]
			if e.Obj != 0 {
				id, ok := ids[e.Obj]
				if !ok {
					id = int64(len(ids) + 1)
					ids[e.Obj] = id
				}
				e.Obj = id
			}
			renumber(e.Child)
			for _, it := range e.Iters {
				renumber(it)
			}
		}
	}
	for i := range tr.Phases {
		renumber(tr.Phases[i].Root)
	}
}

// TestEngineTraceParity: the closure-compiled engine charges exactly
// the cost totals the tree walker charges between dispatcher-hook
// boundaries, so the recorded traces — phase structure, task events,
// compute and critical-section units, object identities — must be
// deeply equal, and any DASH simulation of them must produce identical
// times. This is the property that lets the compiled engine replace
// the walker without perturbing a single simulation result.
func TestEngineTraceParity(t *testing.T) {
	for _, tc := range []struct {
		name   string
		source string
	}{
		{"graph", src.Graph},
		{"barneshut", src.BarnesHut},
		{"water", src.Water},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog, plan := setup(t, tc.source)

			ipWalk := interp.NewEngine(prog, nil, interp.EngineWalk)
			trWalk, err := tracer.Collect(ipWalk, plan)
			if err != nil {
				t.Fatalf("walk collect: %v", err)
			}
			ipComp := interp.NewEngine(prog, nil, interp.EngineCompiled)
			trComp, err := tracer.Collect(ipComp, plan)
			if err != nil {
				t.Fatalf("compiled collect: %v", err)
			}

			if w, c := trWalk.SerialUnits(), trComp.SerialUnits(); w != c {
				t.Errorf("serial units: walk %d, compiled %d", w, c)
			}
			if w, c := trWalk.ParallelUnits(), trComp.ParallelUnits(); w != c {
				t.Errorf("parallel units: walk %d, compiled %d", w, c)
			}
			// Object IDs are allocated from a counter shared across
			// interpreter instances, so the second trace's IDs are offset
			// by the first run's allocations. Renumber both in first-seen
			// order: the lock-sharing structure is what must agree.
			canonicalizeObjIDs(trWalk)
			canonicalizeObjIDs(trComp)
			if !reflect.DeepEqual(trWalk, trComp) {
				t.Errorf("traces differ structurally (phases: walk %d, compiled %d)",
					len(trWalk.Phases), len(trComp.Phases))
			}
			for _, procs := range []int{1, 8, 32} {
				w := simdash.Simulate(trWalk, simdash.DefaultParams(procs))
				c := simdash.Simulate(trComp, simdash.DefaultParams(procs))
				if w.TimeMicros != c.TimeMicros {
					t.Errorf("procs %d: simulated time walk %v, compiled %v",
						procs, w.TimeMicros, c.TimeMicros)
				}
			}
		})
	}
}
