// Package tracer executes a planned program once, single-threaded, and
// records its parallel structure as an event trace: serial phases,
// parallel regions with task trees, parallel loops with per-iteration
// tasks, and critical sections on concrete objects. The DASH simulator
// (internal/simdash) schedules these traces on a configurable number of
// virtual processors.
package tracer

import (
	"commute/internal/codegen"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/types"
	"commute/internal/interp"
)

// EventKind discriminates task events.
type EventKind int

// Task event kinds.
const (
	EvCompute EventKind = iota // Units of computation
	EvCrit                     // Units of computation inside a critical section on Obj
	EvSpawn                    // creation of Child (ready immediately)
	EvLoop                     // a parallel loop: Iters run under GSS, barrier before continuing
)

// Event is one step of a task.
type Event struct {
	Kind  EventKind
	Units int64
	Obj   int64
	Child *Task
	Iters []*Task
}

// Task is a unit of parallel work: an ordered event sequence.
type Task struct {
	Events []Event
}

// TotalUnits returns the compute units in the task including critical
// sections and, recursively, loops and children.
func (t *Task) TotalUnits() int64 {
	var sum int64
	for _, e := range t.Events {
		switch e.Kind {
		case EvCompute, EvCrit:
			sum += e.Units
		case EvSpawn:
			sum += e.Child.TotalUnits()
		case EvLoop:
			for _, it := range e.Iters {
				sum += it.TotalUnits()
			}
		}
	}
	return sum
}

// Phase is one segment of the program: a serial section or a parallel
// region rooted at a task.
type Phase struct {
	Label  string
	Serial int64 // serial compute units (Root == nil)
	Root   *Task // parallel region (Serial ignored)
	// ReduceObjects counts the distinct objects whose accumulations ran
	// against per-processor replicas in this region (the §6.3.4
	// replication optimization); the simulator charges a phase-end
	// reduction proportional to replicas × objects.
	ReduceObjects int
}

// Trace is the recorded structure of one program execution.
type Trace struct {
	Phases []Phase
}

// SerialUnits returns the units executed in serial phases.
func (tr *Trace) SerialUnits() int64 {
	var sum int64
	for _, p := range tr.Phases {
		if p.Root == nil {
			sum += p.Serial
		}
	}
	return sum
}

// ParallelUnits returns the units inside parallel regions.
func (tr *Trace) ParallelUnits() int64 {
	var sum int64
	for _, p := range tr.Phases {
		if p.Root != nil {
			sum += p.Root.TotalUnits()
		}
	}
	return sum
}

// Collect runs the program and returns its trace.
func Collect(ip *interp.Interp, plan *codegen.Plan) (*Trace, error) {
	c := &collector{ip: ip, plan: plan, trace: &Trace{}}
	if ip.Prog.Main == nil {
		return nil, &interp.RuntimeError{Msg: "program has no main function"}
	}
	_, err := ip.Call(c.serialCtx(), ip.Prog.Main, nil, nil)
	if err != nil {
		return nil, err
	}
	c.flushSerial("main")
	return c.trace, nil
}

type collector struct {
	ip          *interp.Interp
	plan        *codegen.Plan
	trace       *Trace
	serialUnits int64
	// replicated collects the objects whose locks the §6.3.4
	// replication optimization removed within the current region.
	replicated map[int64]bool
}

func (c *collector) flushSerial(label string) {
	if c.serialUnits > 0 {
		c.trace.Phases = append(c.trace.Phases, Phase{Label: label, Serial: c.serialUnits})
		c.serialUnits = 0
	}
}

// serialCtx records serial compute and opens parallel regions.
func (c *collector) serialCtx() *interp.Ctx {
	ctx := c.ip.NewCtx()
	ctx.Charge = func(units int64) { c.serialUnits += units }
	ctx.Invoke = func(site *types.CallSite, recv *interp.Object, args []interp.Value) (interp.Value, error) {
		mp := c.plan.Methods[site.Callee]
		if mp != nil && mp.Parallel && c.plan.GeneratesConcurrency(site.Callee) {
			c.flushSerial(site.Caller.FullName())
			root := &Task{}
			c.replicated = make(map[int64]bool)
			err := c.runVersion(root, site.Callee, recv, args, parVersion)
			if err != nil {
				return interp.Value{}, err
			}
			c.trace.Phases = append(c.trace.Phases, Phase{
				Label: site.Callee.FullName(), Root: root,
				ReduceObjects: len(c.replicated),
			})
			c.replicated = nil
			return interp.Value{}, nil
		}
		return c.ip.Call(ctx, site.Callee, recv, args)
	}
	return ctx
}

// execVersion distinguishes the generated variants.
type execVersion int

const (
	parVersion execVersion = iota
	mutexVersion
)

// taskState tracks the event stream of one task while the interpreter
// runs inside it.
type taskState struct {
	task    *Task
	compute int64 // pending compute units
	critObj int64 // active critical-section object (0 = none)
	crit    int64 // pending crit units
}

func (ts *taskState) charge(units int64) {
	if ts.critObj != 0 {
		ts.crit += units
		return
	}
	ts.compute += units
}

func (ts *taskState) flushCompute() {
	if ts.compute > 0 {
		ts.task.Events = append(ts.task.Events, Event{Kind: EvCompute, Units: ts.compute})
		ts.compute = 0
	}
}

func (ts *taskState) beginCrit(obj int64) {
	if ts.critObj != 0 {
		return // nested crits flatten into the outer one
	}
	ts.flushCompute()
	ts.critObj = obj
}

func (ts *taskState) endCrit(obj int64) {
	if ts.critObj != obj {
		return
	}
	ts.task.Events = append(ts.task.Events, Event{Kind: EvCrit, Units: ts.crit, Obj: obj})
	ts.critObj = 0
	ts.crit = 0
}

// runVersion executes one method activation inside a task, mirroring
// rt.callVersion's lock and dispatch policy while recording events.
func (c *collector) runVersion(task *Task, m *types.Method, recv *interp.Object, args []interp.Value, ver execVersion) error {
	mp := c.plan.Methods[m]
	ts := &taskState{task: task}

	if mp == nil || !mp.Parallel {
		// Plain serial execution inside the task.
		ctx := c.ip.NewCtx()
		ctx.Charge = ts.charge
		_, err := c.ip.Call(ctx, m, recv, args)
		ts.flushCompute()
		return err
	}

	locked := mp.NeedsLock && recv != nil
	if locked && c.plan.Opt.ReplicateAccumulators && mp.Replicable {
		// §6.3.4 replication: the accumulations run against a
		// per-processor replica — no lock, no contention; the region
		// pays a reduction at the end.
		locked = false
		if c.replicated != nil {
			c.replicated[recv.ID] = true
		}
	}
	var lockObj int64
	if locked {
		lockObj = recv.ID
		ts.beginCrit(lockObj)
	}
	releaseBeforeSpawn := locked && !mp.HoldsLockThrough

	ctx := c.ip.NewCtx()
	ctx.Charge = ts.charge
	ctx.Invoke = func(site *types.CallSite, r2 *interp.Object, a2 []interp.Value) (interp.Value, error) {
		switch mp.Site[site.ID] {
		case codegen.ActionInline, codegen.ActionHoisted:
			// Auxiliary / hoisted nested operations: inline; their
			// units accrue to the current (possibly critical) segment.
			return c.ip.Call(ctx, site.Callee, r2, a2)
		case codegen.ActionSpawn:
			if releaseBeforeSpawn {
				ts.endCrit(lockObj)
			}
			if ver == mutexVersion {
				// Serial invocation of the mutex version: its lock
				// appears as a crit in this same task.
				ts.flushCompute()
				sub := &Task{}
				if err := c.runVersion(sub, site.Callee, r2, a2, mutexVersion); err != nil {
					return interp.Value{}, err
				}
				task.Events = append(task.Events, sub.Events...)
				return interp.Value{}, nil
			}
			ts.flushCompute()
			child := &Task{}
			if err := c.runVersion(child, site.Callee, r2, a2, parVersion); err != nil {
				return interp.Value{}, err
			}
			task.Events = append(task.Events, Event{Kind: EvSpawn, Child: child})
			return interp.Value{}, nil
		default:
			return c.ip.Call(ctx, site.Callee, r2, a2)
		}
	}
	ctx.ForLoop = func(fs *ast.ForStmt, fr *interp.Frame, from, to, step int64) (bool, error) {
		lp := c.plan.Loops[fs]
		if lp == nil || !lp.Parallel {
			return false, nil
		}
		if ver == mutexVersion && !c.plan.Opt.DisableSuppression {
			return false, nil
		}
		if releaseBeforeSpawn {
			ts.endCrit(lockObj)
		}
		ts.flushCompute()
		var iters []*Task
		for i := from; i < to; i += step {
			iter := &Task{}
			its := &taskState{task: iter}
			ictx := c.iterCtx(its)
			sub := c.ip.NewIterFrame(ictx, fr)
			err := c.ip.RunLoopIteration(sub, fs, i)
			c.ip.ReleaseFrame(sub)
			if err != nil {
				return true, err
			}
			its.flushCompute()
			iters = append(iters, iter)
		}
		task.Events = append(task.Events, Event{Kind: EvLoop, Iters: iters})
		return true, nil
	}

	_, err := c.ip.Call(ctx, m, recv, args)
	if locked {
		ts.endCrit(lockObj)
	}
	ts.flushCompute()
	return err
}

// iterCtx executes one parallel-loop iteration (mutex semantics).
func (c *collector) iterCtx(ts *taskState) *interp.Ctx {
	ctx := c.ip.NewCtx()
	ctx.Charge = ts.charge
	ctx.Invoke = func(site *types.CallSite, recv *interp.Object, args []interp.Value) (interp.Value, error) {
		mp := c.plan.Methods[site.Caller]
		if mp != nil && mp.Site[site.ID] == codegen.ActionInline {
			return c.ip.Call(ctx, site.Callee, recv, args)
		}
		cp := c.plan.Methods[site.Callee]
		if cp != nil && cp.Parallel {
			ts.flushCompute()
			sub := &Task{}
			if err := c.runVersion(sub, site.Callee, recv, args, mutexVersion); err != nil {
				return interp.Value{}, err
			}
			ts.task.Events = append(ts.task.Events, sub.Events...)
			return interp.Value{}, nil
		}
		return c.ip.Call(ctx, site.Callee, recv, args)
	}
	return ctx
}
