package parser

import (
	"testing"

	"commute/internal/apps/src"
)

// FuzzParse checks that the parser never panics and always terminates
// on arbitrary input (run with `go test -fuzz=FuzzParse` for active
// fuzzing; the seed corpus runs under plain `go test`).
func FuzzParse(f *testing.F) {
	seeds := []string{
		src.Graph,
		src.BarnesHut,
		src.Water,
		"",
		"class",
		"class a {",
		"class a { public: int x; };",
		"void a::m() { x = ; }",
		"const int N = ;",
		"class a : public {};",
		"void m() { for (;;) ; }",
		"void m() { if (x) } else { }",
		"}}}}{{{{",
		"class a { public: int v[; };",
		"void m() { x = dynamic_cast<>(y); }",
		"void m() { x = ((((1)))); }",
		"/* unterminated",
		"\"unterminated",
		"void m() { x = 1e; }",
		"void m() { a->b->c->d->e(); }",
		"void m() { x = -----1; }",
		"# preprocessor only",
		"class µ { public: int 日本; };",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		if len(input) > 1<<16 {
			return
		}
		// Must not panic or hang; errors are expected.
		file, err := Parse("fuzz.mc", input)
		_ = err
		if file == nil {
			t.Fatal("Parse returned a nil file")
		}
	})
}

// TestParserProgressOnGarbage: the recovery loop always advances.
func TestParserProgressOnGarbage(t *testing.T) {
	garbage := []string{
		"= = = = =",
		"class a { ; ; ; };",
		"void a::m() { ) ) ) }",
		"int int int",
		"(((((((((",
		"-> -> ->",
	}
	for _, g := range garbage {
		if _, err := Parse("garbage.mc", g); err == nil {
			t.Errorf("expected an error for %q", g)
		}
	}
}
