// Package parser implements a recursive-descent parser for the mini-C++
// dialect (the §6.1 subset of Rinard & Diniz 1996): classes with single
// public inheritance, out-of-line method definitions, class-typed global
// variables, named constants, and free functions such as main.
package parser

import (
	"fmt"
	"strconv"

	"commute/internal/frontend/ast"
	"commute/internal/frontend/lexer"
	"commute/internal/frontend/token"
)

// Parser parses one source file.
type Parser struct {
	lex    *lexer.Lexer
	buf    []token.Token // lookahead buffer
	errors []error

	// classNames tracks class declarations seen so far, used to
	// disambiguate local variable declarations from expressions.
	classNames map[string]bool
}

// Parse parses src (named name in diagnostics) and returns the file.
// It returns an error summarizing the first few syntax errors, if any.
func Parse(name, src string) (*ast.File, error) {
	p := &Parser{lex: lexer.New(src), classNames: make(map[string]bool)}
	file := &ast.File{Name: name}
	for p.peek().Kind != token.EOF {
		before := p.peek()
		d := p.parseDecl()
		if d != nil {
			file.Decls = append(file.Decls, d)
		}
		if len(p.errors) > 12 {
			break
		}
		// Guarantee progress even on malformed input.
		if p.peek() == before && d == nil {
			p.next()
		}
	}
	p.errors = append(p.lex.Errors(), p.errors...)
	if len(p.errors) > 0 {
		msg := ""
		for i, e := range p.errors {
			if i > 0 {
				msg += "\n"
			}
			msg += name + ":" + e.Error()
		}
		return file, fmt.Errorf("%s", msg)
	}
	return file, nil
}

func (p *Parser) peek() token.Token { return p.peekAt(0) }

func (p *Parser) peekAt(n int) token.Token {
	for len(p.buf) <= n {
		p.buf = append(p.buf, p.lex.Next())
	}
	return p.buf[n]
}

func (p *Parser) next() token.Token {
	t := p.peek()
	p.buf = p.buf[1:]
	return t
}

func (p *Parser) errorf(pos token.Pos, format string, args ...any) {
	p.errors = append(p.errors, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// expect consumes the next token if it has kind k, otherwise records an
// error and returns the (unconsumed) token.
func (p *Parser) expect(k token.Kind) token.Token {
	t := p.peek()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		return t
	}
	return p.next()
}

func (p *Parser) accept(k token.Kind) bool {
	if p.peek().Kind == k {
		p.next()
		return true
	}
	return false
}

// sync skips tokens until after the next semicolon or to a closing
// brace/EOF, for error recovery.
func (p *Parser) sync() {
	for {
		switch p.peek().Kind {
		case token.SEMI:
			p.next()
			return
		case token.RBRACE, token.EOF:
			return
		}
		p.next()
	}
}

// ---------------------------------------------------------------------
// Declarations

func (p *Parser) parseDecl() ast.Decl {
	t := p.peek()
	switch t.Kind {
	case token.KWCLASS:
		return p.parseClassDecl()
	case token.KWCONST:
		return p.parseConstDecl()
	case token.KWINT, token.KWDOUBLE, token.KWBOOLEAN, token.KWVOID:
		return p.parseMethodOrGlobal()
	case token.IDENT:
		if p.classNames[t.Lit] {
			return p.parseMethodOrGlobal()
		}
		p.errorf(t.Pos, "unexpected %s at top level", t)
		p.sync()
		return nil
	default:
		p.errorf(t.Pos, "unexpected %s at top level", t)
		p.sync()
		return nil
	}
}

// parseBaseType parses `int|double|boolean|void|ClassName` with an
// optional trailing `*`.
func (p *Parser) parseBaseType() *ast.TypeExpr {
	t := p.next()
	te := &ast.TypeExpr{TokPos: t.Pos}
	switch t.Kind {
	case token.KWINT:
		te.Kind = ast.TInt
	case token.KWDOUBLE:
		te.Kind = ast.TDouble
	case token.KWBOOLEAN:
		te.Kind = ast.TBool
	case token.KWVOID:
		te.Kind = ast.TVoid
	case token.IDENT:
		te.Kind = ast.TClass
		te.ClassName = t.Lit
	default:
		p.errorf(t.Pos, "expected type, found %s", t)
		te.Kind = ast.TInt
	}
	if p.accept(token.STAR) {
		te.Ptr = true
		// Tolerate `**` by treating it as a single indirection level;
		// the dialect does not model multi-level pointers.
		for p.accept(token.STAR) {
			p.errorf(t.Pos, "multi-level pointers are not in the dialect")
		}
	}
	return te
}

// parseArrayDims parses zero or more `[const-expr]` suffixes.
func (p *Parser) parseArrayDims(te *ast.TypeExpr) {
	for p.peek().Kind == token.LBRACKET {
		p.next()
		if p.peek().Kind == token.RBRACKET {
			// `double v[]` — unsized reference-parameter array.
			te.ArrayDims = append(te.ArrayDims, nil)
		} else {
			te.ArrayDims = append(te.ArrayDims, p.parseExpr())
		}
		p.expect(token.RBRACKET)
	}
}

func (p *Parser) parseClassDecl() ast.Decl {
	start := p.expect(token.KWCLASS)
	nameTok := p.expect(token.IDENT)
	cd := &ast.ClassDecl{Name: nameTok.Lit, TokPos: start.Pos}
	p.classNames[cd.Name] = true
	if p.accept(token.COLON) {
		p.expect(token.KWPUBLIC)
		cd.Base = p.expect(token.IDENT).Lit
	}
	p.expect(token.LBRACE)
	public := false // C++ classes default to private
	for p.peek().Kind != token.RBRACE && p.peek().Kind != token.EOF {
		switch p.peek().Kind {
		case token.KWPUBLIC:
			p.next()
			p.expect(token.COLON)
			public = true
		case token.KWPRIVATE:
			p.next()
			p.expect(token.COLON)
			public = false
		default:
			p.parseMember(cd, public)
		}
	}
	p.expect(token.RBRACE)
	p.expect(token.SEMI)
	return cd
}

// parseMember parses one field declaration or method prototype inside a
// class body.
func (p *Parser) parseMember(cd *ast.ClassDecl, public bool) {
	te := p.parseBaseType()
	nameTok := p.expect(token.IDENT)
	if p.peek().Kind == token.LPAREN {
		// Method prototype or inline definition.
		params := p.parseParams()
		if p.peek().Kind == token.LBRACE {
			md := &ast.MethodDef{
				ClassName: cd.Name, Name: nameTok.Lit, RetType: te,
				Params: params, TokPos: nameTok.Pos,
			}
			md.Body = p.parseBlock()
			cd.Inline = append(cd.Inline, md)
			return
		}
		proto := &ast.MethodProto{
			Name: nameTok.Lit, RetType: te, Params: params,
			Public: public, TokPos: nameTok.Pos,
		}
		p.expect(token.SEMI)
		cd.Protos = append(cd.Protos, proto)
		return
	}
	// Field declaration; comma-separated declarators share the base
	// type, with each declarator carrying its own optional `*`, e.g.
	// `graph *left, *right;` or `int val, sum;`.
	for {
		fte := &ast.TypeExpr{
			Kind: te.Kind, ClassName: te.ClassName, Ptr: te.Ptr, TokPos: te.TokPos,
		}
		p.parseArrayDims(fte)
		cd.Fields = append(cd.Fields, &ast.FieldDecl{
			Name: nameTok.Lit, Type: fte, Public: public, TokPos: nameTok.Pos,
		})
		if !p.accept(token.COMMA) {
			break
		}
		ptr := p.accept(token.STAR)
		nameTok = p.expect(token.IDENT)
		te = &ast.TypeExpr{Kind: te.Kind, ClassName: te.ClassName, Ptr: ptr, TokPos: te.TokPos}
	}
	p.expect(token.SEMI)
}

func (p *Parser) parseConstDecl() ast.Decl {
	start := p.expect(token.KWCONST)
	te := p.parseBaseType()
	nameTok := p.expect(token.IDENT)
	var val ast.Expr
	if p.accept(token.ASSIGN) {
		val = p.parseExpr()
	} else {
		// Tolerate the paper's `const int NDIM 3;` spelling.
		val = p.parseExpr()
	}
	p.expect(token.SEMI)
	return &ast.ConstDecl{Name: nameTok.Lit, Type: te, Value: val, TokPos: start.Pos}
}

// parseMethodOrGlobal parses either
//
//	type cl::name(params) { ... }   out-of-line method definition
//	type name(params) { ... }       free function definition
//	ClassName name;                 global variable
func (p *Parser) parseMethodOrGlobal() ast.Decl {
	te := p.parseBaseType()
	nameTok := p.expect(token.IDENT)
	switch p.peek().Kind {
	case token.SCOPE:
		p.next()
		// te was actually the return type? No: `double body::subdivp` —
		// te is the return type and nameTok is the class name.
		methodTok := p.expect(token.IDENT)
		md := &ast.MethodDef{
			ClassName: nameTok.Lit,
			Name:      methodTok.Lit,
			RetType:   te,
			TokPos:    te.TokPos,
		}
		md.Params = p.parseParams()
		md.Body = p.parseBlock()
		return md
	case token.LPAREN:
		md := &ast.MethodDef{
			Name:    nameTok.Lit,
			RetType: te,
			TokPos:  te.TokPos,
		}
		md.Params = p.parseParams()
		md.Body = p.parseBlock()
		return md
	case token.SEMI:
		p.next()
		return &ast.GlobalVar{Name: nameTok.Lit, Type: te, TokPos: te.TokPos}
	default:
		p.errorf(p.peek().Pos, "expected '::', '(' or ';' after %q, found %s", nameTok.Lit, p.peek())
		p.sync()
		return nil
	}
}

func (p *Parser) parseParams() []*ast.Param {
	p.expect(token.LPAREN)
	var params []*ast.Param
	if p.peek().Kind != token.RPAREN {
		for {
			te := p.parseBaseType()
			nameTok := p.expect(token.IDENT)
			p.parseArrayDims(te)
			params = append(params, &ast.Param{Name: nameTok.Lit, Type: te, TokPos: nameTok.Pos})
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	return params
}

// ---------------------------------------------------------------------
// Statements

func (p *Parser) parseBlock() *ast.Block {
	start := p.expect(token.LBRACE)
	blk := &ast.Block{TokPos: start.Pos}
	for p.peek().Kind != token.RBRACE && p.peek().Kind != token.EOF {
		before := p.peek()
		ss := p.parseStmtList()
		blk.Stmts = append(blk.Stmts, ss...)
		if p.peek() == before && len(ss) == 0 {
			p.next()
		}
	}
	p.expect(token.RBRACE)
	return blk
}

// parseStmtList parses one syntactic statement, which may expand into
// several AST statements (comma-separated local declarators such as
// `double inc, r, drsq, d;` become one DeclStmt each).
func (p *Parser) parseStmtList() []ast.Stmt {
	t := p.peek()
	switch t.Kind {
	case token.KWINT, token.KWDOUBLE, token.KWBOOLEAN:
		return p.parseDeclStmts()
	case token.IDENT:
		if p.classNames[t.Lit] && p.peekAt(1).Kind == token.STAR && p.peekAt(2).Kind == token.IDENT {
			return p.parseDeclStmts()
		}
	}
	s := p.parseStmt()
	if s == nil {
		return nil
	}
	return []ast.Stmt{s}
}

func (p *Parser) parseStmt() ast.Stmt {
	t := p.peek()
	switch t.Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.KWIF:
		return p.parseIf()
	case token.KWFOR:
		return p.parseFor()
	case token.KWWHILE:
		return p.parseWhile()
	case token.KWRETURN:
		p.next()
		rs := &ast.ReturnStmt{TokPos: t.Pos}
		if p.peek().Kind != token.SEMI {
			rs.X = p.parseExpr()
		}
		p.expect(token.SEMI)
		return rs
	case token.KWINT, token.KWDOUBLE, token.KWBOOLEAN:
		// A declaration used as a single-statement body; wrap multiple
		// declarators in a block.
		ss := p.parseDeclStmts()
		if len(ss) == 1 {
			return ss[0]
		}
		return &ast.Block{Stmts: ss, TokPos: t.Pos}
	case token.IDENT:
		// `ClassName *x;` declares a pointer local.
		if p.classNames[t.Lit] && p.peekAt(1).Kind == token.STAR && p.peekAt(2).Kind == token.IDENT {
			ss := p.parseDeclStmts()
			if len(ss) == 1 {
				return ss[0]
			}
			return &ast.Block{Stmts: ss, TokPos: t.Pos}
		}
		return p.parseExprStmt()
	case token.SEMI:
		p.next()
		return nil
	default:
		return p.parseExprStmt()
	}
}

// parseDeclStmts parses a local declaration statement with one or more
// comma-separated declarators sharing the base type. Each declarator
// may carry its own `*` and array dimensions.
func (p *Parser) parseDeclStmts() []ast.Stmt {
	te := p.parseBaseType()
	var out []ast.Stmt
	for {
		dte := &ast.TypeExpr{
			Kind: te.Kind, ClassName: te.ClassName, Ptr: te.Ptr, TokPos: te.TokPos,
		}
		nameTok := p.expect(token.IDENT)
		p.parseArrayDims(dte)
		ds := &ast.DeclStmt{Name: nameTok.Lit, Type: dte, TokPos: dte.TokPos}
		if p.accept(token.ASSIGN) {
			ds.Init = p.parseExpr()
		}
		out = append(out, ds)
		if !p.accept(token.COMMA) {
			break
		}
		// Declarators after the first carry their own optional `*`.
		ptr := p.accept(token.STAR)
		te = &ast.TypeExpr{Kind: te.Kind, ClassName: te.ClassName, Ptr: ptr, TokPos: te.TokPos}
	}
	p.expect(token.SEMI)
	return out
}

func (p *Parser) parseExprStmt() ast.Stmt {
	e := p.parseExpr()
	p.expect(token.SEMI)
	return &ast.ExprStmt{X: e}
}

func (p *Parser) parseIf() ast.Stmt {
	start := p.expect(token.KWIF)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseStmt()
	var els ast.Stmt
	if p.accept(token.KWELSE) {
		els = p.parseStmt()
	}
	return &ast.IfStmt{Cond: cond, Then: then, Else: els, TokPos: start.Pos}
}

func (p *Parser) parseFor() ast.Stmt {
	start := p.expect(token.KWFOR)
	p.expect(token.LPAREN)
	fs := &ast.ForStmt{TokPos: start.Pos}
	if p.peek().Kind != token.SEMI {
		switch p.peek().Kind {
		case token.KWINT, token.KWDOUBLE, token.KWBOOLEAN:
			te := p.parseBaseType()
			nameTok := p.expect(token.IDENT)
			ds := &ast.DeclStmt{Name: nameTok.Lit, Type: te, TokPos: te.TokPos}
			if p.accept(token.ASSIGN) {
				ds.Init = p.parseExpr()
			}
			fs.Init = ds
		default:
			fs.Init = &ast.ExprStmt{X: p.parseExpr()}
		}
	}
	p.expect(token.SEMI)
	if p.peek().Kind != token.SEMI {
		fs.Cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	if p.peek().Kind != token.RPAREN {
		fs.Post = &ast.ExprStmt{X: p.parseExpr()}
	}
	p.expect(token.RPAREN)
	fs.Body = p.parseStmt()
	return fs
}

func (p *Parser) parseWhile() ast.Stmt {
	start := p.expect(token.KWWHILE)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	body := p.parseStmt()
	return &ast.WhileStmt{Cond: cond, Body: body, TokPos: start.Pos}
}

// ---------------------------------------------------------------------
// Expressions

// parseExpr parses an expression, including assignments (right
// associative, lowest precedence).
func (p *Parser) parseExpr() ast.Expr {
	lhs := p.parseBinary(1)
	t := p.peek()
	if t.Kind.IsAssign() {
		p.next()
		rhs := p.parseExpr()
		return &ast.Assign{Op: t.Kind, LHS: lhs, RHS: rhs, TokPos: t.Pos}
	}
	return lhs
}

func (p *Parser) parseBinary(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		t := p.peek()
		prec := t.Kind.Precedence()
		if prec < minPrec || prec == 0 {
			return lhs
		}
		p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &ast.Binary{Op: t.Kind, X: lhs, Y: rhs, TokPos: t.Pos}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	t := p.peek()
	switch t.Kind {
	case token.MINUS:
		p.next()
		return &ast.Unary{Op: token.MINUS, X: p.parseUnary(), TokPos: t.Pos}
	case token.NOT:
		p.next()
		return &ast.Unary{Op: token.NOT, X: p.parseUnary(), TokPos: t.Pos}
	case token.PLUS:
		p.next()
		return p.parseUnary()
	case token.INC, token.DEC:
		p.next()
		x := p.parseUnary()
		op := token.PLUSEQ
		if t.Kind == token.DEC {
			op = token.MINUSEQ
		}
		return &ast.Assign{Op: op, LHS: x, RHS: &ast.IntLit{Value: 1, TokPos: t.Pos}, TokPos: t.Pos}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		t := p.peek()
		switch t.Kind {
		case token.DOT, token.ARROW:
			p.next()
			nameTok := p.expect(token.IDENT)
			arrow := t.Kind == token.ARROW
			if p.peek().Kind == token.LPAREN {
				call := &ast.CallExpr{
					Recv: x, Arrow: arrow, Method: nameTok.Lit, Site: -1, TokPos: nameTok.Pos,
				}
				call.Args = p.parseArgs()
				x = call
			} else {
				x = &ast.FieldAccess{X: x, Name: nameTok.Lit, Arrow: arrow, TokPos: nameTok.Pos}
			}
		case token.LBRACKET:
			p.next()
			idx := p.parseExpr()
			p.expect(token.RBRACKET)
			x = &ast.IndexExpr{X: x, Index: idx, TokPos: t.Pos}
		case token.INC, token.DEC:
			p.next()
			op := token.PLUSEQ
			if t.Kind == token.DEC {
				op = token.MINUSEQ
			}
			x = &ast.Assign{Op: op, LHS: x, RHS: &ast.IntLit{Value: 1, TokPos: t.Pos}, TokPos: t.Pos}
		default:
			return x
		}
	}
}

func (p *Parser) parseArgs() []ast.Expr {
	p.expect(token.LPAREN)
	var args []ast.Expr
	if p.peek().Kind != token.RPAREN {
		for {
			args = append(args, p.parseExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	return args
}

func (p *Parser) parsePrimary() ast.Expr {
	t := p.peek()
	switch t.Kind {
	case token.INTLIT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "bad integer literal %q", t.Lit)
		}
		return &ast.IntLit{Value: v, TokPos: t.Pos}
	case token.FLOATLIT:
		p.next()
		v, err := strconv.ParseFloat(t.Lit, 64)
		if err != nil {
			p.errorf(t.Pos, "bad float literal %q", t.Lit)
		}
		return &ast.FloatLit{Value: v, TokPos: t.Pos}
	case token.STRINGLIT:
		p.next()
		return &ast.StringLit{Value: t.Lit, TokPos: t.Pos}
	case token.KWTRUE:
		p.next()
		return &ast.BoolLit{Value: true, TokPos: t.Pos}
	case token.KWFALSE:
		p.next()
		return &ast.BoolLit{Value: false, TokPos: t.Pos}
	case token.KWNULL:
		p.next()
		return &ast.NullLit{TokPos: t.Pos}
	case token.KWTHIS:
		p.next()
		return &ast.ThisExpr{TokPos: t.Pos}
	case token.KWNEW:
		p.next()
		nameTok := p.expect(token.IDENT)
		// Tolerate `new cl()`.
		if p.peek().Kind == token.LPAREN {
			p.next()
			p.expect(token.RPAREN)
		}
		return &ast.NewExpr{ClassName: nameTok.Lit, TokPos: t.Pos}
	case token.KWCAST:
		p.next()
		p.expect(token.LT)
		nameTok := p.expect(token.IDENT)
		p.expect(token.STAR)
		p.expect(token.GT)
		p.expect(token.LPAREN)
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return &ast.CastExpr{ClassName: nameTok.Lit, X: x, Dynamic: true, TokPos: t.Pos}
	case token.IDENT:
		p.next()
		if p.peek().Kind == token.LPAREN {
			call := &ast.CallExpr{Method: t.Lit, Site: -1, TokPos: t.Pos}
			call.Args = p.parseArgs()
			return call
		}
		return &ast.Ident{Name: t.Lit, TokPos: t.Pos}
	case token.LPAREN:
		// C-style pointer cast `(cl*)expr` or a parenthesized expression.
		if p.peekAt(1).Kind == token.IDENT && p.classNames[p.peekAt(1).Lit] &&
			p.peekAt(2).Kind == token.STAR && p.peekAt(3).Kind == token.RPAREN {
			p.next()
			nameTok := p.next()
			p.next() // *
			p.next() // )
			x := p.parseUnary()
			return &ast.CastExpr{ClassName: nameTok.Lit, X: x, Dynamic: false, TokPos: t.Pos}
		}
		p.next()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	default:
		p.errorf(t.Pos, "unexpected %s in expression", t)
		p.next()
		return &ast.IntLit{Value: 0, TokPos: t.Pos}
	}
}
