package parser

import (
	"testing"

	"commute/internal/apps/src"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
)

func mustParse(t *testing.T, src string) *ast.File {
	t.Helper()
	f, err := Parse("test.mc", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	return f
}

func TestParseGraphExample(t *testing.T) {
	f := mustParse(t, src.Graph)
	var classes, methods, globals, consts int
	for _, d := range f.Decls {
		switch d.(type) {
		case *ast.ClassDecl:
			classes++
		case *ast.MethodDef:
			methods++
		case *ast.GlobalVar:
			globals++
		case *ast.ConstDecl:
			consts++
		}
	}
	if classes != 2 {
		t.Errorf("classes = %d, want 2", classes)
	}
	if methods != 6 { // visit, reset, nextRandom, build, traverse, main
		t.Errorf("methods = %d, want 6", methods)
	}
	if globals != 1 {
		t.Errorf("globals = %d, want 1", globals)
	}
	if consts != 1 {
		t.Errorf("consts = %d, want 1", consts)
	}
}

func TestParseClassWithInheritance(t *testing.T) {
	f := mustParse(t, `
class node {
public:
  double mass;
};
class cell : public node {
public:
  node *subp[8];
};
`)
	cd := f.Decls[1].(*ast.ClassDecl)
	if cd.Name != "cell" || cd.Base != "node" {
		t.Fatalf("got class %s : %s", cd.Name, cd.Base)
	}
	if len(cd.Fields) != 1 || cd.Fields[0].Name != "subp" {
		t.Fatalf("fields: %+v", cd.Fields)
	}
	ft := cd.Fields[0].Type
	if !ft.Ptr || ft.ClassName != "node" || len(ft.ArrayDims) != 1 {
		t.Fatalf("subp type: %+v", ft)
	}
}

func TestParseInlineMethod(t *testing.T) {
	f := mustParse(t, `
const int NDIM = 3;
class vector {
public:
  double val[NDIM];
  void vecAdd(double v[NDIM]) {
    for (int i = 0; i < NDIM; i++)
      val[i] += v[i];
  }
};
`)
	cd := f.Decls[1].(*ast.ClassDecl)
	if len(cd.Inline) != 1 || cd.Inline[0].Name != "vecAdd" {
		t.Fatalf("inline methods: %+v", cd.Inline)
	}
	if cd.Inline[0].ClassName != "vector" {
		t.Fatalf("inline method class = %q", cd.Inline[0].ClassName)
	}
}

func TestParseOutOfLineMethod(t *testing.T) {
	f := mustParse(t, `
class body {
public:
  double phi;
  void gravsub(body *n);
};
void body::gravsub(body *n) {
  phi -= 1.0;
}
`)
	md := f.Decls[1].(*ast.MethodDef)
	if md.ClassName != "body" || md.Name != "gravsub" {
		t.Fatalf("method: %s::%s", md.ClassName, md.Name)
	}
	if len(md.Params) != 1 || md.Params[0].Name != "n" {
		t.Fatalf("params: %+v", md.Params)
	}
}

func TestParseDynamicCast(t *testing.T) {
	f := mustParse(t, `
class node { public: double mass; };
class cell : public node { public: int k; };
class walker {
public:
  int w;
  void walk(node *n);
};
void walker::walk(node *n) {
  cell *c;
  c = dynamic_cast<cell*>(n);
  if (c != NULL)
    w = 1;
}
`)
	md := f.Decls[3].(*ast.MethodDef)
	es := md.Body.Stmts[1].(*ast.ExprStmt)
	asn := es.X.(*ast.Assign)
	cast, ok := asn.RHS.(*ast.CastExpr)
	if !ok || cast.ClassName != "cell" || !cast.Dynamic {
		t.Fatalf("cast: %+v", asn.RHS)
	}
}

func TestParseCStyleCast(t *testing.T) {
	f := mustParse(t, `
class node { public: double mass; };
class cell : public node { public: int k; };
class walker {
public:
  int w;
  void walk(node *n);
};
void walker::walk(node *n) {
  cell *c;
  c = (cell*)n;
}
`)
	md := f.Decls[3].(*ast.MethodDef)
	es := md.Body.Stmts[1].(*ast.ExprStmt)
	asn := es.X.(*ast.Assign)
	cast, ok := asn.RHS.(*ast.CastExpr)
	if !ok || cast.ClassName != "cell" || cast.Dynamic {
		t.Fatalf("cast: %+v", asn.RHS)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	f := mustParse(t, `
class a {
public:
  double x;
  void m();
};
void a::m() {
  x = 1.0 + 2.0 * 3.0;
}
`)
	md := f.Decls[1].(*ast.MethodDef)
	asn := md.Body.Stmts[0].(*ast.ExprStmt).X.(*ast.Assign)
	add, ok := asn.RHS.(*ast.Binary)
	if !ok || add.Op != token.PLUS {
		t.Fatalf("top op should be +, got %+v", asn.RHS)
	}
	mul, ok := add.Y.(*ast.Binary)
	if !ok || mul.Op != token.STAR {
		t.Fatalf("right operand should be *, got %+v", add.Y)
	}
}

func TestPostfixIncrementDesugar(t *testing.T) {
	f := mustParse(t, `
class a {
public:
  int x;
  void m();
};
void a::m() {
  x++;
  --x;
}
`)
	md := f.Decls[1].(*ast.MethodDef)
	inc := md.Body.Stmts[0].(*ast.ExprStmt).X.(*ast.Assign)
	if inc.Op != token.PLUSEQ {
		t.Errorf("x++ should desugar to +=, got %s", inc.Op)
	}
	dec := md.Body.Stmts[1].(*ast.ExprStmt).X.(*ast.Assign)
	if dec.Op != token.MINUSEQ {
		t.Errorf("--x should desugar to -=, got %s", dec.Op)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"class { };",            // missing class name
		"class a { int x; } ",   // missing semicolon after class
		"void a::m() { x = ; }", // missing expression
		"int q qq;",             // bad top-level
	}
	for _, src := range cases {
		if _, err := Parse("bad.mc", src); err == nil {
			t.Errorf("expected parse error for %q", src)
		}
	}
}

func TestParseForLoopVariants(t *testing.T) {
	f := mustParse(t, `
class a {
public:
  int x;
  void m();
};
void a::m() {
  int i;
  for (i = 0; i < 10; i++) x = x + 1;
  for (int j = 0; j < 10; j = j + 2) x = x + j;
  for (;;) x = 0;
  while (x < 5) x = x + 1;
}
`)
	md := f.Decls[1].(*ast.MethodDef)
	if len(md.Body.Stmts) != 5 {
		t.Fatalf("stmts = %d, want 5", len(md.Body.Stmts))
	}
	bare := md.Body.Stmts[3].(*ast.ForStmt)
	if bare.Init != nil || bare.Cond != nil || bare.Post != nil {
		t.Errorf("for(;;) should have nil parts")
	}
}

func TestCommaFieldDeclarators(t *testing.T) {
	f := mustParse(t, `
class graph {
public:
  int val, sum;
  graph *left, *right;
};
`)
	cd := f.Decls[0].(*ast.ClassDecl)
	if len(cd.Fields) != 4 {
		t.Fatalf("fields = %d, want 4", len(cd.Fields))
	}
	names := []string{"val", "sum", "left", "right"}
	for i, n := range names {
		if cd.Fields[i].Name != n {
			t.Errorf("field %d = %s, want %s", i, cd.Fields[i].Name, n)
		}
	}
	if cd.Fields[2].Type.Ptr != true || cd.Fields[3].Type.Ptr != true {
		t.Error("left/right should be pointers")
	}
	if cd.Fields[0].Type.Ptr || cd.Fields[1].Type.Ptr {
		t.Error("val/sum should not be pointers")
	}
}

func TestNestedFieldAccessChain(t *testing.T) {
	f := mustParse(t, `
const int NDIM = 3;
class vector { public: double val[NDIM]; };
class node { public: vector pos; };
class body : public node {
public:
  double d;
  void f(node *n);
};
void body::f(node *n) {
  d = n->pos.val[0] - pos.val[0];
}
`)
	md := f.Decls[4].(*ast.MethodDef)
	asn := md.Body.Stmts[0].(*ast.ExprStmt).X.(*ast.Assign)
	sub, ok := asn.RHS.(*ast.Binary)
	if !ok || sub.Op != token.MINUS {
		t.Fatalf("rhs: %+v", asn.RHS)
	}
	idx, ok := sub.X.(*ast.IndexExpr)
	if !ok {
		t.Fatalf("lhs of -: %+v", sub.X)
	}
	fa, ok := idx.X.(*ast.FieldAccess)
	if !ok || fa.Name != "val" || fa.Arrow {
		t.Fatalf("val access: %+v", idx.X)
	}
	pos, ok := fa.X.(*ast.FieldAccess)
	if !ok || pos.Name != "pos" || !pos.Arrow {
		t.Fatalf("pos access: %+v", fa.X)
	}
}
