// Package ast defines the abstract syntax tree for the mini-C++ dialect.
//
// The tree is produced by the parser and decorated in place by the type
// checker (resolution results live in the Resolved*/Sym fields so that
// later phases — analysis, code generation, interpretation — can walk a
// single structure).
package ast

import "commute/internal/frontend/token"

// Node is implemented by every syntax tree node.
type Node interface {
	Pos() token.Pos
}

// ---------------------------------------------------------------------
// Types (syntactic)

// TypeKind discriminates syntactic type expressions.
type TypeKind int

// Syntactic type kinds.
const (
	TInt TypeKind = iota
	TDouble
	TBool
	TVoid
	TClass
)

// TypeExpr is a syntactic type: a base type possibly wrapped in a
// pointer and/or fixed-size array dimensions.
//
//	double            TypeExpr{Kind: TDouble}
//	node *            TypeExpr{Kind: TClass, ClassName: "node", Ptr: true}
//	double v[NDIM]    TypeExpr{Kind: TDouble, ArrayDims: [NDIM-expr]}
//	node *subp[NSUB]  TypeExpr{Kind: TClass, ClassName: "node", Ptr: true, ArrayDims: [...]}
type TypeExpr struct {
	Kind      TypeKind
	ClassName string // when Kind == TClass
	Ptr       bool
	ArrayDims []Expr // constant dimension expressions, outermost first
	TokPos    token.Pos
}

func (t *TypeExpr) Pos() token.Pos { return t.TokPos }

// ---------------------------------------------------------------------
// Declarations

// File is a parsed source file.
type File struct {
	Name  string
	Decls []Decl
}

func (f *File) Pos() token.Pos {
	if len(f.Decls) > 0 {
		return f.Decls[0].Pos()
	}
	return token.Pos{}
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// ClassDecl declares a class with optional single public inheritance.
type ClassDecl struct {
	Name   string
	Base   string // "" if none
	Fields []*FieldDecl
	Protos []*MethodProto
	// Inline holds methods defined inside the class body; their
	// ClassName is filled with the class name by the parser.
	Inline []*MethodDef
	TokPos token.Pos
}

// FieldDecl declares one instance variable.
type FieldDecl struct {
	Name   string
	Type   *TypeExpr
	Public bool
	TokPos token.Pos
}

// MethodProto is an in-class method prototype; bodies are given by
// out-of-line MethodDef declarations.
type MethodProto struct {
	Name    string
	RetType *TypeExpr
	Params  []*Param
	Public  bool
	TokPos  token.Pos
}

// MethodDef is an out-of-line method definition `ret cl::name(params) {...}`
// or a free function when ClassName is empty.
type MethodDef struct {
	ClassName string // "" for free functions (e.g. main)
	Name      string
	RetType   *TypeExpr
	Params    []*Param
	Body      *Block
	TokPos    token.Pos
}

// Param is a formal parameter.
type Param struct {
	Name   string
	Type   *TypeExpr
	TokPos token.Pos
}

// GlobalVar declares a global variable (class types only in the dialect).
type GlobalVar struct {
	Name   string
	Type   *TypeExpr
	TokPos token.Pos
}

// ConstDecl declares a named compile-time constant, e.g. `const int NDIM = 3;`.
type ConstDecl struct {
	Name   string
	Type   *TypeExpr
	Value  Expr
	TokPos token.Pos
}

func (d *ClassDecl) Pos() token.Pos   { return d.TokPos }
func (d *FieldDecl) Pos() token.Pos   { return d.TokPos }
func (d *MethodProto) Pos() token.Pos { return d.TokPos }
func (d *MethodDef) Pos() token.Pos   { return d.TokPos }
func (d *Param) Pos() token.Pos       { return d.TokPos }
func (d *GlobalVar) Pos() token.Pos   { return d.TokPos }
func (d *ConstDecl) Pos() token.Pos   { return d.TokPos }

func (*ClassDecl) declNode() {}
func (*MethodDef) declNode() {}
func (*GlobalVar) declNode() {}
func (*ConstDecl) declNode() {}

// ---------------------------------------------------------------------
// Statements

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a `{ ... }` statement list.
type Block struct {
	Stmts  []Stmt
	TokPos token.Pos
}

// DeclStmt declares a local variable with an optional initializer.
// Slot (the method-frame slot) and Coerce (the initializer's store
// coercion) are filled by the interpreter's resolution pass.
type DeclStmt struct {
	Name   string
	Type   *TypeExpr
	Init   Expr // may be nil
	Slot   int32
	Coerce Coercion
	TokPos token.Pos
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	X Expr
}

// IfStmt is an if/else statement.
type IfStmt struct {
	Cond   Expr
	Then   Stmt
	Else   Stmt // may be nil
	TokPos token.Pos
}

// ForStmt is a C-style for loop. Init and Post may be nil.
type ForStmt struct {
	Init   Stmt // DeclStmt or ExprStmt
	Cond   Expr
	Post   Stmt // ExprStmt
	Body   Stmt
	TokPos token.Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond   Expr
	Body   Stmt
	TokPos token.Pos
}

// ReturnStmt returns from a method, optionally with a value.
type ReturnStmt struct {
	X      Expr // may be nil
	TokPos token.Pos
}

func (s *Block) Pos() token.Pos      { return s.TokPos }
func (s *DeclStmt) Pos() token.Pos   { return s.TokPos }
func (s *ExprStmt) Pos() token.Pos   { return s.X.Pos() }
func (s *IfStmt) Pos() token.Pos     { return s.TokPos }
func (s *ForStmt) Pos() token.Pos    { return s.TokPos }
func (s *WhileStmt) Pos() token.Pos  { return s.TokPos }
func (s *ReturnStmt) Pos() token.Pos { return s.TokPos }

func (*Block) stmtNode()      {}
func (*DeclStmt) stmtNode()   {}
func (*ExprStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*ForStmt) stmtNode()    {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}

// ---------------------------------------------------------------------
// Expressions

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Coercion is the store-coercion kind precomputed by the interpreter's
// resolution pass: what implicit numeric conversion a value assigned
// through this node undergoes (int↔double per the dialect's rules).
// Precomputing it removes the per-store type-table lookup from the
// interpreter's hot path.
type Coercion uint8

// Store coercion kinds.
const (
	CoNone   Coercion = iota // store as-is
	CoInt                    // truncate double to int
	CoDouble                 // widen int to double
)

// SymKind classifies what an identifier resolved to.
type SymKind int

// Identifier resolution classes, filled in by the type checker.
const (
	SymUnresolved SymKind = iota
	SymLocal              // local variable
	SymParam              // formal parameter
	SymConst              // named compile-time constant
	SymGlobal             // global variable (class-typed)
	SymField              // implicit receiver instance variable
)

// Ident is a name use. Sym and (for SymField) FieldClass are filled in by
// the type checker. For SymField, the identifier behaves as
// this->Name with the field declared in class FieldClass.
//
// Slot and Coerce are filled in by the interpreter's resolution pass
// (interp.resolve): Slot is the frame slot (SymLocal/SymParam), the
// object slot offset (SymField — static because the layout is
// base-class-first), the constant-table index (SymConst), or the
// global-table index (SymGlobal).
type Ident struct {
	Name       string
	Sym        SymKind
	FieldClass string // class where the field is declared (SymField)
	Slot       int32
	Coerce     Coercion
	TokPos     token.Pos
}

// ThisExpr is the receiver reference `this`.
type ThisExpr struct {
	TokPos token.Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Value  int64
	TokPos token.Pos
}

// FloatLit is a floating literal.
type FloatLit struct {
	Value  float64
	TokPos token.Pos
}

// BoolLit is TRUE or FALSE.
type BoolLit struct {
	Value  bool
	TokPos token.Pos
}

// NullLit is NULL.
type NullLit struct {
	TokPos token.Pos
}

// StringLit is a string literal (print builtins only).
type StringLit struct {
	Value  string
	TokPos token.Pos
}

// FieldAccess is `X.Name` (Arrow=false) or `X->Name` (Arrow=true).
// DeclClass (set by the type checker) is the class that declares Name.
// Slot is the static object-slot offset of the field and Coerce the
// store coercion, both filled by the interpreter's resolution pass.
type FieldAccess struct {
	X         Expr
	Name      string
	Arrow     bool
	DeclClass string
	Slot      int32
	Coerce    Coercion
	TokPos    token.Pos
}

// IndexExpr is `X[Index]`. Coerce (resolution pass) is the element
// store coercion.
type IndexExpr struct {
	X      Expr
	Index  Expr
	Coerce Coercion
	TokPos token.Pos
}

// CallExpr is a method or builtin invocation.
//
//	Recv == nil && Builtin      sqrt(x), print(...)
//	Recv == nil && !Builtin     implicit this->Method(...) call
//	Recv != nil                 Recv->Method(...) or Recv.Method(...)
//
// Site is the global call-site ID assigned by the type checker
// (builtins get Site == -1).
type CallExpr struct {
	Recv    Expr // nil for builtins and implicit-this calls
	Arrow   bool // Recv->M vs Recv.M
	Method  string
	Args    []Expr
	Builtin bool
	Site    int
	TokPos  token.Pos
}

// NewExpr allocates a new object: `new cl`. ClassIdx is the index of
// the class in the program's declaration order (resolution pass).
type NewExpr struct {
	ClassName string
	ClassIdx  int32
	TokPos    token.Pos
}

// CastExpr is `dynamic_cast<cl*>(X)` (or the C-style `(cl*)X`).
// ClassIdx is the target class's declaration-order index (resolution
// pass).
type CastExpr struct {
	ClassName string
	ClassIdx  int32
	X         Expr
	Dynamic   bool // true for dynamic_cast (runtime-checked, NULL on failure)
	TokPos    token.Pos
}

// Unary is `Op X` (prefix). INC/DEC are desugared by the parser into
// Assign nodes, so Op is one of -, !.
type Unary struct {
	Op     token.Kind
	X      Expr
	TokPos token.Pos
}

// Binary is `X Op Y`.
type Binary struct {
	Op     token.Kind
	X, Y   Expr
	TokPos token.Pos
}

// Assign is `LHS op= RHS`; Op is one of =, +=, -=, *=, /=.
type Assign struct {
	Op     token.Kind
	LHS    Expr
	RHS    Expr
	TokPos token.Pos
}

func (e *Ident) Pos() token.Pos       { return e.TokPos }
func (e *ThisExpr) Pos() token.Pos    { return e.TokPos }
func (e *IntLit) Pos() token.Pos      { return e.TokPos }
func (e *FloatLit) Pos() token.Pos    { return e.TokPos }
func (e *BoolLit) Pos() token.Pos     { return e.TokPos }
func (e *NullLit) Pos() token.Pos     { return e.TokPos }
func (e *StringLit) Pos() token.Pos   { return e.TokPos }
func (e *FieldAccess) Pos() token.Pos { return e.TokPos }
func (e *IndexExpr) Pos() token.Pos   { return e.TokPos }
func (e *CallExpr) Pos() token.Pos    { return e.TokPos }
func (e *NewExpr) Pos() token.Pos     { return e.TokPos }
func (e *CastExpr) Pos() token.Pos    { return e.TokPos }
func (e *Unary) Pos() token.Pos       { return e.TokPos }
func (e *Binary) Pos() token.Pos      { return e.TokPos }
func (e *Assign) Pos() token.Pos      { return e.TokPos }

func (*Ident) exprNode()       {}
func (*ThisExpr) exprNode()    {}
func (*IntLit) exprNode()      {}
func (*FloatLit) exprNode()    {}
func (*BoolLit) exprNode()     {}
func (*NullLit) exprNode()     {}
func (*StringLit) exprNode()   {}
func (*FieldAccess) exprNode() {}
func (*IndexExpr) exprNode()   {}
func (*CallExpr) exprNode()    {}
func (*NewExpr) exprNode()     {}
func (*CastExpr) exprNode()    {}
func (*Unary) exprNode()       {}
func (*Binary) exprNode()      {}
func (*Assign) exprNode()      {}
