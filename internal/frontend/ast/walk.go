package ast

// Inspect traverses the subtree rooted at n in depth-first order,
// calling f for every node. If f returns false for a node, Inspect skips
// that node's children.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			Inspect(d, f)
		}
	case *ClassDecl:
		for _, fd := range x.Fields {
			Inspect(fd, f)
		}
		for _, md := range x.Inline {
			Inspect(md, f)
		}
	case *MethodDef:
		for _, p := range x.Params {
			Inspect(p, f)
		}
		Inspect(x.Body, f)
	case *Block:
		for _, s := range x.Stmts {
			Inspect(s, f)
		}
	case *DeclStmt:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
	case *ExprStmt:
		Inspect(x.X, f)
	case *IfStmt:
		Inspect(x.Cond, f)
		Inspect(x.Then, f)
		if x.Else != nil {
			Inspect(x.Else, f)
		}
	case *ForStmt:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
		if x.Cond != nil {
			Inspect(x.Cond, f)
		}
		if x.Post != nil {
			Inspect(x.Post, f)
		}
		Inspect(x.Body, f)
	case *WhileStmt:
		Inspect(x.Cond, f)
		Inspect(x.Body, f)
	case *ReturnStmt:
		if x.X != nil {
			Inspect(x.X, f)
		}
	case *FieldAccess:
		Inspect(x.X, f)
	case *IndexExpr:
		Inspect(x.X, f)
		Inspect(x.Index, f)
	case *CallExpr:
		if x.Recv != nil {
			Inspect(x.Recv, f)
		}
		for _, a := range x.Args {
			Inspect(a, f)
		}
	case *CastExpr:
		Inspect(x.X, f)
	case *Unary:
		Inspect(x.X, f)
	case *Binary:
		Inspect(x.X, f)
		Inspect(x.Y, f)
	case *Assign:
		Inspect(x.LHS, f)
		Inspect(x.RHS, f)
	}
}

// CallSites returns every non-builtin CallExpr in the subtree rooted at
// n, in source order.
func CallSites(n Node) []*CallExpr {
	var calls []*CallExpr
	Inspect(n, func(m Node) bool {
		if c, ok := m.(*CallExpr); ok && !c.Builtin {
			calls = append(calls, c)
		}
		return true
	})
	return calls
}
