package types_test

import (
	"strings"
	"testing"

	"commute/internal/apps/src"
	"commute/internal/frontend/ast"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/types"
)

func check(t *testing.T, source string) *types.Program {
	t.Helper()
	f, err := parser.Parse("test.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := types.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func checkErr(t *testing.T, source, wantSub string) {
	t.Helper()
	f, err := parser.Parse("test.mc", source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = types.Check(f)
	if err == nil {
		t.Fatalf("expected type error containing %q, got none", wantSub)
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSub)
	}
}

func TestCheckGraphExample(t *testing.T) {
	p := check(t, src.Graph)
	g := p.Classes["graph"]
	if g == nil {
		t.Fatal("class graph missing")
	}
	if len(g.Fields) != 5 {
		t.Errorf("graph fields = %d, want 5", len(g.Fields))
	}
	visit := g.MethodByName("visit")
	if visit == nil {
		t.Fatal("graph::visit missing")
	}
	if len(visit.CallSites) != 2 {
		t.Errorf("visit call sites = %d, want 2", len(visit.CallSites))
	}
	for _, cs := range visit.CallSites {
		if cs.Callee != visit {
			t.Errorf("visit call site should resolve to visit, got %s", cs.Callee.FullName())
		}
	}
	if p.Main == nil {
		t.Fatal("main missing")
	}
	if p.Globals["Builder"] == nil {
		t.Fatal("global Builder missing")
	}
}

func TestInheritanceFieldResolution(t *testing.T) {
	p := check(t, `
const int NDIM = 3;
class vector { public: double val[NDIM]; };
class node { public: double mass; vector pos; };
class body : public node {
public:
  double phi;
  void f(node *n);
};
void body::f(node *n) {
  phi = n->pos.val[0] - pos.val[0] + mass;
}
`)
	body := p.Classes["body"]
	if body.Base != p.Classes["node"] {
		t.Fatal("body should inherit node")
	}
	// pos resolves through inheritance; its declaring class is node.
	f := body.FieldByName("pos")
	if f == nil || f.Class.Name != "node" {
		t.Fatalf("pos field: %+v", f)
	}
	m := body.MethodByName("f")
	md := m.Def
	// Find the implicit-receiver `pos` identifier and confirm FieldClass.
	var found bool
	ast.Inspect(md.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "pos" {
			if id.Sym != ast.SymField || id.FieldClass != "node" {
				t.Errorf("pos resolved as %v / %q", id.Sym, id.FieldClass)
			}
			found = true
		}
		return true
	})
	if !found {
		t.Error("implicit pos identifier not found")
	}
}

func TestMethodResolutionThroughBase(t *testing.T) {
	p := check(t, `
class base {
public:
  int x;
  void bump();
};
class derived : public base {
public:
  int y;
  void go();
};
void base::bump() { x = x + 1; }
void derived::go() { bump(); this->bump(); }
`)
	d := p.Classes["derived"]
	m := d.MethodByName("go")
	if len(m.CallSites) != 2 {
		t.Fatalf("call sites = %d, want 2", len(m.CallSites))
	}
	for _, cs := range m.CallSites {
		if cs.Callee.FullName() != "base::bump" {
			t.Errorf("callee = %s, want base::bump", cs.Callee.FullName())
		}
	}
}

func TestReferenceParameterTyping(t *testing.T) {
	p := check(t, `
const int NDIM = 3;
class vector {
public:
  double val[NDIM];
  void vecAdd(double v[NDIM]) {
    for (int i = 0; i < NDIM; i++)
      val[i] += v[i];
  }
};
class body {
public:
  vector acc;
  void g();
};
void body::g() {
  double tmpv[NDIM];
  tmpv[0] = 1.0;
  acc.vecAdd(tmpv);
}
`)
	vec := p.Classes["vector"]
	va := vec.MethodByName("vecAdd")
	if len(va.Params) != 1 || !va.Params[0].IsRef() {
		t.Fatalf("vecAdd param should be a reference parameter: %+v", va.Params)
	}
	if got := len(va.ReferenceParams()); got != 1 {
		t.Errorf("ReferenceParams = %d, want 1", got)
	}
	// Class pointers are not reference parameters.
	p2 := check(t, `
class node { public: double mass; };
class body {
public:
  double phi;
  void gravsub(node *n);
};
void body::gravsub(node *n) { phi = phi - n->mass; }
`)
	gs := p2.Classes["body"].MethodByName("gravsub")
	if gs.Params[0].IsRef() {
		t.Error("class pointer parameter should not be a reference parameter")
	}
}

func TestGlobalMustBeClassType(t *testing.T) {
	// Valid: class-typed global.
	check(t, `
class a { public: int x; void m(); };
void a::m() { x = 1; }
a A;
`)
	// Invalid: primitive global (dialect §6.1).
	checkErr(t, `int X;`, "globals must be class types")
}

func TestErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`class a { public: int x; void m(); }; void a::m() { y = 1; }`, "undefined identifier y"},
		{`class a { public: int x; void m(); }; void a::m() { x = TRUE; }`, "cannot assign"},
		{`class a { public: int x; void m(); }; void a::m() { if (x) x = 1; }`, "must be boolean"},
		{`class a { public: int x; void m(); }; void a::m() { this->q(); }`, "no method q"},
		{`class a { public: int x; void m(); };`, "never defined"},
		{`class a : public b { public: int x; };`, "undefined base class"},
		{`class a { public: int x; void m(); }; void a::m() { int x; int x; }`, "redeclared"},
		{`class a { public: int x; void m(int k); }; void a::m(int k) { int k; }`, "shadows a parameter"},
		{`class a { public: int x; void m(); }; void a::m() { 1 = 2; }`, "not assignable"},
		{`class a { public: int x; void m(); }; void a::m() { x = 1 + TRUE; }`, "requires numeric"},
		{`class a { public: void m(); }; void a::m() { return 1; }`, "return value in void method"},
		{`class a { public: int m(); }; int a::m() { return; }`, "return with no value"},
		{`class b { public: int q; }; class a { public: int x; void m(b *p); }; void a::m(b *p) { x = p->nope; }`, "no field nope"},
	}
	for _, tc := range cases {
		checkErr(t, tc.src, tc.want)
	}
}

func TestExprTypes(t *testing.T) {
	p := check(t, `
class a {
public:
  int i;
  double d;
  boolean b;
  void m();
};
void a::m() {
  d = i * 2 + d;
  b = i < 3 && d >= 1.0;
}
`)
	m := p.Classes["a"].MethodByName("m")
	s0 := m.Def.Body.Stmts[0].(*ast.ExprStmt).X.(*ast.Assign)
	if tt := p.TypeOf(s0.RHS); !types.Equal(tt, types.Basic(types.Double)) {
		t.Errorf("i*2+d type = %v, want double", tt)
	}
	add := s0.RHS.(*ast.Binary)
	if tt := p.TypeOf(add.X); !types.Equal(tt, types.Basic(types.Int)) {
		t.Errorf("i*2 type = %v, want int", tt)
	}
	s1 := m.Def.Body.Stmts[1].(*ast.ExprStmt).X.(*ast.Assign)
	if tt := p.TypeOf(s1.RHS); !types.Equal(tt, types.Basic(types.Bool)) {
		t.Errorf("condition type = %v, want boolean", tt)
	}
}

func TestCallSiteNumbering(t *testing.T) {
	p := check(t, src.Graph)
	for i, cs := range p.CallSites {
		if cs.ID != i {
			t.Fatalf("call site %d has ID %d", i, cs.ID)
		}
		if cs.Call.Site != i {
			t.Fatalf("call site %d AST back-pointer = %d", i, cs.Call.Site)
		}
	}
	if len(p.CallSites) == 0 {
		t.Fatal("no call sites registered")
	}
}

func TestDynamicCastTyping(t *testing.T) {
	p := check(t, `
class node { public: double mass; };
class cell : public node { public: int k; };
class w {
public:
  int r;
  void f(node *n);
};
void w::f(node *n) {
  cell *c;
  c = dynamic_cast<cell*>(n);
  if (c != NULL)
    r = c->k;
}
`)
	_ = p
	checkErr(t, `
class node { public: double mass; };
class other { public: int k; };
class w {
public:
  int r;
  void f(node *n);
};
void w::f(node *n) {
  other *c;
  c = dynamic_cast<other*>(n);
}
`, "unrelated classes")
}

func TestBuiltins(t *testing.T) {
	p := check(t, `
class a {
public:
  double d;
  void m();
};
void a::m() {
  d = sqrt(d) + fabs(d) + pow(d, 2.0);
}
`)
	m := p.Classes["a"].MethodByName("m")
	if len(m.CallSites) != 0 {
		t.Errorf("builtins must not register call sites, got %d", len(m.CallSites))
	}
	checkErr(t, `
class a { public: double d; void m(); };
void a::m() { d = sqrt(d, d); }
`, "expects 1 arguments")
}

func TestMainAndFreeFunctions(t *testing.T) {
	p := check(t, `
class sim { public: int n; void run(); };
void sim::run() { n = n + 1; }
sim S;
void helper() { S.run(); }
void main() { helper(); }
`)
	if p.Main == nil {
		t.Fatal("main not found")
	}
	if len(p.Main.CallSites) != 1 {
		t.Fatalf("main call sites = %d", len(p.Main.CallSites))
	}
	checkErr(t, `
class sim { public: int n; void run(); };
void helper() { }
void sim::run() { helper(); }
`, "methods may not call free functions")
}
