package types

import (
	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
)

// ---------------------------------------------------------------------
// Bodies

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]Type)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) lookupLocal(name string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return nil, false
}

func (c *checker) declareLocal(name string, t Type, pos token.Pos) {
	if _, ok := c.scopes[len(c.scopes)-1][name]; ok {
		c.errorf(pos, "local %s redeclared in the same scope", name)
		return
	}
	if _, shadows := c.lookupLocal(name); shadows {
		c.errorf(pos, "local %s shadows an outer declaration (not allowed in the dialect)", name)
		return
	}
	if c.method.ParamByName(name) != nil {
		c.errorf(pos, "local %s shadows a parameter", name)
		return
	}
	// Sequential reuse of the same name (e.g. two `for (int i...)`
	// loops) shares the method-level slot; conflicting types are
	// rejected.
	if prev, ok := c.method.Locals[name]; ok && !Equal(prev, t) {
		c.errorf(pos, "local %s redeclared with a different type (%s vs %s)", name, t, prev)
		return
	}
	c.method.Locals[name] = t
	c.scopes[len(c.scopes)-1][name] = t
}

func (c *checker) checkBody(m *Method) {
	if m == nil || m.Def == nil {
		if m != nil {
			c.errorf(token.Pos{Line: 1, Col: 1}, "%s declared but never defined", m.FullName())
		}
		return
	}
	c.method = m
	c.scopes = nil
	c.pushScope()
	for _, p := range m.Params {
		if _, ok := p.Type.(Object); ok {
			c.errorf(p.Decl.Pos(), "%s: parameter %s: objects are passed by pointer in the dialect", m.FullName(), p.Name)
		}
	}
	c.checkStmt(m.Def.Body)
	c.popScope()
	c.method = nil
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.Block:
		c.pushScope()
		for _, sub := range st.Stmts {
			c.checkStmt(sub)
		}
		c.popScope()
	case *ast.DeclStmt:
		t := c.resolveType(st.Type, st.Pos())
		if b, ok := t.(Basic); ok && b == Void {
			c.errorf(st.Pos(), "void local %s", st.Name)
			return
		}
		if _, ok := t.(Object); ok {
			c.errorf(st.Pos(), "local %s: nested-object locals are not in the dialect", st.Name)
			return
		}
		c.prog.DeclType[st] = t
		c.declareLocal(st.Name, t, st.Pos())
		if st.Init != nil {
			it := c.checkExpr(st.Init)
			c.checkAssignable(t, it, st.Pos(), "initialization of "+st.Name)
		}
	case *ast.ExprStmt:
		c.checkExpr(st.X)
	case *ast.IfStmt:
		ct := c.checkExpr(st.Cond)
		if b, ok := ct.(Basic); !ok || b != Bool {
			c.errorf(st.Pos(), "if condition must be boolean, got %s", ct)
		}
		c.checkStmt(st.Then)
		if st.Else != nil {
			c.checkStmt(st.Else)
		}
	case *ast.ForStmt:
		c.pushScope()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			ct := c.checkExpr(st.Cond)
			if b, ok := ct.(Basic); !ok || b != Bool {
				c.errorf(st.Pos(), "for condition must be boolean, got %s", ct)
			}
		}
		if st.Post != nil {
			c.checkStmt(st.Post)
		}
		c.checkStmt(st.Body)
		c.popScope()
	case *ast.WhileStmt:
		ct := c.checkExpr(st.Cond)
		if b, ok := ct.(Basic); !ok || b != Bool {
			c.errorf(st.Pos(), "while condition must be boolean, got %s", ct)
		}
		c.checkStmt(st.Body)
	case *ast.ReturnStmt:
		want := c.method.Ret
		if st.X == nil {
			if b, ok := want.(Basic); !ok || b != Void {
				c.errorf(st.Pos(), "%s: return with no value in method returning %s", c.method.FullName(), want)
			}
			return
		}
		got := c.checkExpr(st.X)
		if b, ok := want.(Basic); ok && b == Void {
			c.errorf(st.Pos(), "%s: return value in void method", c.method.FullName())
			return
		}
		c.checkAssignable(want, got, st.Pos(), "return")
	}
}

// checkAssignable verifies that a value of type `from` can be stored in
// a location of type `to`.
func (c *checker) checkAssignable(to, from Type, pos token.Pos, what string) {
	if to == nil || from == nil {
		return
	}
	if IsNumeric(to) && IsNumeric(from) {
		return // implicit int<->double conversion
	}
	if tb, ok := to.(Basic); ok {
		if fb, ok2 := from.(Basic); ok2 && tb == fb {
			return
		}
	}
	if tp, ok := to.(Pointer); ok {
		if _, isNull := from.(Basic); isNull && from.(Basic) == Null {
			return
		}
		if fp, ok2 := from.(Pointer); ok2 && fp.Class.InheritsFrom(tp.Class) {
			return // implicit upcast
		}
	}
	c.errorf(pos, "%s: cannot assign %s to %s", what, from, to)
}

// setType records and returns an expression's type.
func (c *checker) setType(e ast.Expr, t Type) Type {
	c.prog.ExprType[e] = t
	return t
}

func (c *checker) checkExpr(e ast.Expr) Type {
	switch x := e.(type) {
	case *ast.IntLit:
		return c.setType(e, Basic(Int))
	case *ast.FloatLit:
		return c.setType(e, Basic(Double))
	case *ast.BoolLit:
		return c.setType(e, Basic(Bool))
	case *ast.NullLit:
		return c.setType(e, Basic(Null))
	case *ast.StringLit:
		return c.setType(e, Basic(String))
	case *ast.ThisExpr:
		if c.method == nil || c.method.Class == nil {
			c.errorf(x.Pos(), "this used outside a class method")
			return c.setType(e, Basic(Int))
		}
		return c.setType(e, Pointer{Class: c.method.Class})
	case *ast.Ident:
		return c.checkIdent(x)
	case *ast.FieldAccess:
		return c.checkFieldAccess(x)
	case *ast.IndexExpr:
		xt := c.checkExpr(x.X)
		it := c.checkExpr(x.Index)
		if b, ok := it.(Basic); !ok || b != Int {
			c.errorf(x.Pos(), "array index must be int, got %s", it)
		}
		switch at := xt.(type) {
		case Array:
			return c.setType(e, at.Elem)
		case PrimPointer:
			return c.setType(e, Basic(at.Elem))
		default:
			c.errorf(x.Pos(), "indexing non-array type %s", xt)
			return c.setType(e, Basic(Int))
		}
	case *ast.CallExpr:
		return c.checkCall(x)
	case *ast.NewExpr:
		cl, ok := c.prog.Classes[x.ClassName]
		if !ok {
			c.errorf(x.Pos(), "new of undefined class %s", x.ClassName)
			return c.setType(e, Basic(Int))
		}
		return c.setType(e, Pointer{Class: cl})
	case *ast.CastExpr:
		xt := c.checkExpr(x.X)
		cl, ok := c.prog.Classes[x.ClassName]
		if !ok {
			c.errorf(x.Pos(), "cast to undefined class %s", x.ClassName)
			return c.setType(e, Basic(Int))
		}
		fp, ok := xt.(Pointer)
		if !ok {
			c.errorf(x.Pos(), "cast applied to non-pointer type %s", xt)
			return c.setType(e, Pointer{Class: cl})
		}
		if !fp.Class.Related(cl) {
			c.errorf(x.Pos(), "cast between unrelated classes %s and %s", fp.Class.Name, cl.Name)
		}
		return c.setType(e, Pointer{Class: cl})
	case *ast.Unary:
		xt := c.checkExpr(x.X)
		switch x.Op {
		case token.MINUS:
			if !IsNumeric(xt) {
				c.errorf(x.Pos(), "unary - on non-numeric type %s", xt)
				return c.setType(e, Basic(Int))
			}
			return c.setType(e, xt)
		case token.NOT:
			if b, ok := xt.(Basic); !ok || b != Bool {
				c.errorf(x.Pos(), "! on non-boolean type %s", xt)
			}
			return c.setType(e, Basic(Bool))
		}
		c.errorf(x.Pos(), "unknown unary operator %s", x.Op)
		return c.setType(e, Basic(Int))
	case *ast.Binary:
		return c.checkBinary(x)
	case *ast.Assign:
		return c.checkAssign(x)
	}
	c.errorf(e.Pos(), "unhandled expression")
	return c.setType(e, Basic(Int))
}

func (c *checker) checkIdent(x *ast.Ident) Type {
	// Resolution order: locals, parameters, constants, receiver fields,
	// globals.
	if t, ok := c.lookupLocal(x.Name); ok {
		x.Sym = ast.SymLocal
		return c.setType(x, t)
	}
	if c.method != nil {
		if p := c.method.ParamByName(x.Name); p != nil {
			x.Sym = ast.SymParam
			return c.setType(x, p.Type)
		}
	}
	if v, ok := c.prog.Consts[x.Name]; ok {
		x.Sym = ast.SymConst
		if v.IsInt {
			return c.setType(x, Basic(Int))
		}
		return c.setType(x, Basic(Double))
	}
	if c.method != nil && c.method.Class != nil {
		if f := c.method.Class.FieldByName(x.Name); f != nil {
			x.Sym = ast.SymField
			x.FieldClass = f.Class.Name
			return c.setType(x, f.Type)
		}
	}
	if g, ok := c.prog.Globals[x.Name]; ok {
		x.Sym = ast.SymGlobal
		return c.setType(x, Object{Class: g.Class})
	}
	c.errorf(x.Pos(), "undefined identifier %s", x.Name)
	x.Sym = ast.SymUnresolved
	return c.setType(x, Basic(Int))
}

func (c *checker) checkFieldAccess(x *ast.FieldAccess) Type {
	xt := c.checkExpr(x.X)
	var cl *Class
	switch t := xt.(type) {
	case Pointer:
		if !x.Arrow {
			c.errorf(x.Pos(), "use -> to access fields through a pointer")
		}
		cl = t.Class
	case Object:
		if x.Arrow {
			c.errorf(x.Pos(), "use . to access fields of an object")
		}
		cl = t.Class
	default:
		c.errorf(x.Pos(), "field access on non-object type %s", xt)
		return c.setType(x, Basic(Int))
	}
	f := cl.FieldByName(x.Name)
	if f == nil {
		c.errorf(x.Pos(), "class %s has no field %s", cl.Name, x.Name)
		return c.setType(x, Basic(Int))
	}
	x.DeclClass = f.Class.Name
	return c.setType(x, f.Type)
}

func (c *checker) checkCall(x *ast.CallExpr) Type {
	// Builtins: unqualified calls to names in the builtin table.
	if x.Recv == nil {
		if b, ok := Builtins[x.Method]; ok {
			x.Builtin = true
			x.Site = -1
			if b.Variadic {
				for _, a := range x.Args {
					c.checkExpr(a)
				}
			} else {
				if len(x.Args) != len(b.Params) {
					c.errorf(x.Pos(), "%s expects %d arguments, got %d", b.Name, len(b.Params), len(x.Args))
				}
				for i, a := range x.Args {
					at := c.checkExpr(a)
					if i < len(b.Params) {
						if IsNumeric(b.Params[i]) && IsNumeric(at) {
							continue
						}
						if !Equal(b.Params[i], at) {
							c.errorf(a.Pos(), "%s: argument %d has type %s, want %s", b.Name, i+1, at, b.Params[i])
						}
					}
				}
			}
			return c.setType(x, b.Ret)
		}
	}

	var callee *Method
	switch {
	case x.Recv == nil && c.method != nil && c.method.Class != nil:
		// Implicit this->m(...).
		callee = c.method.Class.MethodByName(x.Method)
		if callee == nil {
			if c.prog.Funcs[x.Method] != nil {
				c.errorf(x.Pos(), "methods may not call free functions (dialect restriction)")
			} else {
				c.errorf(x.Pos(), "class %s has no method %s", c.method.Class.Name, x.Method)
			}
			return c.setType(x, Basic(Int))
		}
	case x.Recv == nil:
		// Free-function call; only allowed from free functions to keep
		// the object-based model of computation clean.
		callee = c.prog.Funcs[x.Method]
		if callee == nil {
			c.errorf(x.Pos(), "undefined function %s", x.Method)
			return c.setType(x, Basic(Int))
		}
	default:
		rt := c.checkExpr(x.Recv)
		var cl *Class
		switch t := rt.(type) {
		case Pointer:
			if !x.Arrow {
				c.errorf(x.Pos(), "use -> to invoke methods through a pointer")
			}
			cl = t.Class
		case Object:
			if x.Arrow {
				c.errorf(x.Pos(), "use . to invoke methods on an object")
			}
			cl = t.Class
		default:
			c.errorf(x.Pos(), "method call on non-object type %s", rt)
			return c.setType(x, Basic(Int))
		}
		callee = cl.MethodByName(x.Method)
		if callee == nil {
			c.errorf(x.Pos(), "class %s has no method %s", cl.Name, x.Method)
			return c.setType(x, Basic(Int))
		}
	}

	if callee.Class == nil && c.method != nil && c.method.Class != nil {
		c.errorf(x.Pos(), "methods may not call free functions (dialect restriction)")
	}

	if len(x.Args) != len(callee.Params) {
		c.errorf(x.Pos(), "%s expects %d arguments, got %d", callee.FullName(), len(callee.Params), len(x.Args))
	}
	for i, a := range x.Args {
		at := c.checkExpr(a)
		if i >= len(callee.Params) {
			continue
		}
		pt := callee.Params[i].Type
		switch ptt := pt.(type) {
		case PrimPointer:
			// Reference parameter: accepts an array of the element type
			// (decay) or another reference parameter of the same type.
			if arr, ok := at.(Array); ok && Equal(arr.Elem, Basic(ptt.Elem)) {
				continue
			}
			if Equal(at, pt) {
				continue
			}
			c.errorf(a.Pos(), "%s: argument %d has type %s, want %s", callee.FullName(), i+1, at, pt)
		case Array:
			if arr, ok := at.(Array); ok && Equal(arr.Elem, ptt.Elem) {
				continue
			}
			if pp, ok := at.(PrimPointer); ok {
				if eb, ok2 := ptt.Elem.(Basic); ok2 && pp.Elem == eb {
					continue
				}
			}
			c.errorf(a.Pos(), "%s: argument %d has type %s, want %s", callee.FullName(), i+1, at, pt)
		default:
			c.checkAssignable(pt, at, a.Pos(), "argument "+callee.Params[i].Name)
		}
	}

	// Register the call site.
	site := &CallSite{
		ID:     len(c.prog.CallSites),
		Call:   x,
		Caller: c.method,
		Callee: callee,
	}
	x.Site = site.ID
	c.prog.CallSites = append(c.prog.CallSites, site)
	if c.method != nil {
		c.method.CallSites = append(c.method.CallSites, site)
	}
	return c.setType(x, callee.Ret)
}

func (c *checker) checkBinary(x *ast.Binary) Type {
	lt := c.checkExpr(x.X)
	rt := c.checkExpr(x.Y)
	switch x.Op {
	case token.PLUS, token.MINUS, token.STAR, token.SLASH:
		if !IsNumeric(lt) || !IsNumeric(rt) {
			c.errorf(x.Pos(), "operator %s requires numeric operands, got %s and %s", x.Op, lt, rt)
			return c.setType(x, Basic(Int))
		}
		if Equal(lt, Basic(Double)) || Equal(rt, Basic(Double)) {
			return c.setType(x, Basic(Double))
		}
		return c.setType(x, Basic(Int))
	case token.PERCENT:
		if !Equal(lt, Basic(Int)) || !Equal(rt, Basic(Int)) {
			c.errorf(x.Pos(), "operator %% requires int operands, got %s and %s", lt, rt)
		}
		return c.setType(x, Basic(Int))
	case token.LT, token.GT, token.LEQ, token.GEQ:
		if !IsNumeric(lt) || !IsNumeric(rt) {
			c.errorf(x.Pos(), "comparison %s requires numeric operands, got %s and %s", x.Op, lt, rt)
		}
		return c.setType(x, Basic(Bool))
	case token.EQ, token.NEQ:
		if IsNumeric(lt) && IsNumeric(rt) {
			return c.setType(x, Basic(Bool))
		}
		if lb, ok := lt.(Basic); ok {
			if rb, ok2 := rt.(Basic); ok2 && lb == rb && lb == Bool {
				return c.setType(x, Basic(Bool))
			}
		}
		lp, lok := lt.(Pointer)
		rp, rok := rt.(Pointer)
		lnull := Equal(lt, Basic(Null))
		rnull := Equal(rt, Basic(Null))
		if (lok && rnull) || (lnull && rok) || (lnull && rnull) {
			return c.setType(x, Basic(Bool))
		}
		if lok && rok {
			if !lp.Class.Related(rp.Class) {
				c.errorf(x.Pos(), "comparing pointers to unrelated classes %s and %s", lp.Class.Name, rp.Class.Name)
			}
			return c.setType(x, Basic(Bool))
		}
		c.errorf(x.Pos(), "invalid comparison between %s and %s", lt, rt)
		return c.setType(x, Basic(Bool))
	case token.AND, token.OR:
		lb, lok := lt.(Basic)
		rb, rok := rt.(Basic)
		if !lok || lb != Bool || !rok || rb != Bool {
			c.errorf(x.Pos(), "operator %s requires boolean operands, got %s and %s", x.Op, lt, rt)
		}
		return c.setType(x, Basic(Bool))
	}
	c.errorf(x.Pos(), "unknown binary operator %s", x.Op)
	return c.setType(x, Basic(Int))
}

func (c *checker) checkAssign(x *ast.Assign) Type {
	lt := c.checkExpr(x.LHS)
	rt := c.checkExpr(x.RHS)
	if !isLvalue(x.LHS) {
		c.errorf(x.Pos(), "left side of assignment is not assignable")
		return c.setType(x, lt)
	}
	if x.Op == token.ASSIGN {
		c.checkAssignable(lt, rt, x.Pos(), "assignment")
	} else {
		// Compound assignment: numeric only.
		if !IsNumeric(lt) || !IsNumeric(rt) {
			c.errorf(x.Pos(), "compound assignment %s requires numeric operands, got %s and %s", x.Op, lt, rt)
		}
	}
	return c.setType(x, lt)
}

// isLvalue reports whether e denotes a storage location.
func isLvalue(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Sym == ast.SymLocal || x.Sym == ast.SymParam || x.Sym == ast.SymField
	case *ast.FieldAccess:
		return true
	case *ast.IndexExpr:
		return true
	}
	return false
}
