package types_test

import (
	"testing"

	"commute/internal/frontend/types"
)

func TestMoreErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"class-redeclared",
			`class a { public: int x; void m(); }; void a::m() { x = 1; } class a { public: int y; };`,
			"redeclared"},
		{"const-redeclared",
			`const int N = 1; const int N = 2;`,
			"redeclared"},
		{"const-float-as-int",
			`const int N = 1.5;`,
			"initialized with float"},
		{"const-non-constant",
			`class a { public: int x; }; const int N = 1 % 2;`,
			"not a compile-time constant"},
		{"void-field",
			`class a { public: void v; };`,
			"void field"},
		{"unsized-array-field",
			`class a { public: int v[]; };`,
			"unsized array"},
		{"primptr-field",
			`class a { public: double *p; };`,
			"pointers to primitives may only appear as parameters"},
		{"bad-array-dim",
			`class a { public: int v[0]; };`,
			"positive integer constant"},
		{"overload",
			`class a { public: void m(); void m(int k); };`,
			"overloading"},
		{"def-without-proto",
			`class a { public: int x; }; void a::m() { }`,
			"no prototype"},
		{"def-twice",
			`class a { public: int x; void m(); }; void a::m() { x = 1; } void a::m() { x = 2; }`,
			"defined twice"},
		{"arity-mismatch",
			`class a { public: int x; void m(int k); }; void a::m() { x = 1; }`,
			"parameters"},
		{"param-type-mismatch",
			`class a { public: int x; void m(int k); }; void a::m(double k) { x = 1; }`,
			"differs from prototype"},
		{"ret-type-mismatch",
			`class a { public: int x; void m(); }; int a::m() { return 1; }`,
			"return type"},
		{"undefined-class-field",
			`class a { public: q nested; };`,
			"undefined class"},
		{"method-def-unknown-class",
			`void q::m() { }`,
			"undefined class"},
		{"object-param",
			`class v { public: int x; }; class a { public: int y; void m(v p); }; void a::m(v p) { y = 1; }`,
			"passed by pointer"},
		{"call-arity",
			`class a { public: int x; void m(int k); void n(); }; void a::m(int k) { x = k; } void a::n() { this->m(); }`,
			"expects 1 arguments"},
		{"wrong-pointer-class",
			`class b { public: int q; }; class c { public: int r; };
			 class a { public: int x; void m(b *p); void n(c *p); };
			 void a::m(b *p) { x = 1; } void a::n(c *p) { this->m(p); }`,
			"cannot assign"},
		{"modulo-on-double",
			`class a { public: double d; void m(); }; void a::m() { d = d % 2.0; }`,
			"requires int operands"},
		{"logic-on-ints",
			`class a { public: int x; boolean b; void m(); }; void a::m() { b = x && b; }`,
			"requires boolean operands"},
		{"compare-unrelated-pointers",
			`class b { public: int q; }; class c { public: int r; };
			 class a { public: boolean eq; void m(b *p, c *p2); };
			 void a::m(b *p, c *p2) { eq = p == p2; }`,
			"unrelated classes"},
		{"cycle",
			`class a : public b { public: int x; }; class b : public a { public: int y; };`,
			"cycle"},
		{"compound-on-bool",
			`class a { public: boolean b; void m(); }; void a::m() { b += TRUE; }`,
			"compound assignment"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkErr(t, tc.src, tc.want)
		})
	}
}

func TestUpcastsAndNullAssignment(t *testing.T) {
	p := check(t, `
class node { public: double mass; };
class body : public node { public: double phi; };
class m {
public:
  node *n;
  void take(node *q);
  void go(body *b);
};
void m::take(node *q) { n = q; }
void m::go(body *b) {
  n = b;          // implicit upcast in assignment
  n = NULL;       // null assignment
  this->take(b);  // implicit upcast in argument passing
}
`)
	if p.Classes["body"].Base != p.Classes["node"] {
		t.Fatal("inheritance lost")
	}
}

func TestReferenceParamDecay(t *testing.T) {
	// Arrays decay to pointer params and pass through as arrays.
	check(t, `
const int N = 3;
class m {
public:
  int x;
  void fill(double *res);
  void fill2(double res[N]);
  void go();
};
void m::fill(double *res) { res[0] = 1.0; }
void m::fill2(double res[N]) { res[1] = 2.0; }
void m::go() {
  double t[N];
  this->fill(t);
  this->fill2(t);
}
`)
}

func TestConstExpressions(t *testing.T) {
	p := check(t, `
const int A = 2 + 3 * 4;
const int B = (20 - 2) / 3;
const int C = -A;
const double D = 1.5 * 2.0;
class m { public: int v[A]; void go(); };
void m::go() { v[0] = B + C; }
`)
	if p.Consts["A"].I != 14 {
		t.Errorf("A = %d, want 14", p.Consts["A"].I)
	}
	if p.Consts["B"].I != 6 {
		t.Errorf("B = %d, want 6", p.Consts["B"].I)
	}
	if p.Consts["C"].I != -14 {
		t.Errorf("C = %d, want -14", p.Consts["C"].I)
	}
	if p.Consts["D"].F != 3.0 {
		t.Errorf("D = %f, want 3.0", p.Consts["D"].F)
	}
	arr, ok := p.Classes["m"].FieldByName("v").Type.(types.Array)
	if !ok || arr.Len != 14 {
		t.Errorf("v type = %v, want [14]int", p.Classes["m"].FieldByName("v").Type)
	}
}
