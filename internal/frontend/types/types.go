// Package types defines the semantic type system and program
// representation for the mini-C++ dialect, and implements the type
// checker that decorates the AST for the analysis phases.
package types

import (
	"fmt"

	"commute/internal/frontend/ast"
)

// ---------------------------------------------------------------------
// Types

// Type is a semantic type.
type Type interface {
	String() string
	typeNode()
}

// Basic is a primitive type.
type Basic int

// Primitive types.
const (
	Int Basic = iota
	Double
	Bool
	Void
	Null   // type of the NULL literal
	String // string literals (print builtins only)
)

func (b Basic) String() string {
	switch b {
	case Int:
		return "int"
	case Double:
		return "double"
	case Bool:
		return "boolean"
	case Void:
		return "void"
	case Null:
		return "null"
	case String:
		return "string"
	}
	return "?"
}

// Pointer is a pointer to a class instance.
type Pointer struct{ Class *Class }

func (p Pointer) String() string { return p.Class.Name + "*" }

// PrimPointer is a pointer to a primitive (a reference parameter type).
type PrimPointer struct{ Elem Basic }

func (p PrimPointer) String() string { return p.Elem.String() + "*" }

// Array is a fixed-size array. Elem is a primitive or a class pointer.
// Len < 0 denotes an unsized reference-parameter array.
type Array struct {
	Elem Type
	Len  int
}

func (a Array) String() string {
	if a.Len < 0 {
		return a.Elem.String() + "[]"
	}
	return fmt.Sprintf("%s[%d]", a.Elem, a.Len)
}

// Object is a nested object instance (a class used by value).
type Object struct{ Class *Class }

func (o Object) String() string { return o.Class.Name }

func (Basic) typeNode()       {}
func (Pointer) typeNode()     {}
func (PrimPointer) typeNode() {}
func (Array) typeNode()       {}
func (Object) typeNode()      {}

// IsNumeric reports whether t is int or double.
func IsNumeric(t Type) bool {
	b, ok := t.(Basic)
	return ok && (b == Int || b == Double)
}

// IsPrimitive reports whether t is int, double, or boolean.
func IsPrimitive(t Type) bool {
	b, ok := t.(Basic)
	return ok && (b == Int || b == Double || b == Bool)
}

// IsReference reports whether a parameter of type t is a reference
// parameter in the paper's sense (§4.2): a pointer to a primitive type
// or an array of primitive types. Class pointers are not reference
// parameters.
func IsReference(t Type) bool {
	switch tt := t.(type) {
	case PrimPointer:
		return true
	case Array:
		return IsPrimitive(tt.Elem)
	}
	return false
}

// Equal reports structural type equality.
func Equal(a, b Type) bool {
	switch at := a.(type) {
	case Basic:
		bt, ok := b.(Basic)
		return ok && at == bt
	case Pointer:
		bt, ok := b.(Pointer)
		return ok && at.Class == bt.Class
	case PrimPointer:
		bt, ok := b.(PrimPointer)
		return ok && at.Elem == bt.Elem
	case Array:
		bt, ok := b.(Array)
		return ok && at.Len == bt.Len && Equal(at.Elem, bt.Elem)
	case Object:
		bt, ok := b.(Object)
		return ok && at.Class == bt.Class
	}
	return false
}

// ---------------------------------------------------------------------
// Program structure

// Class is a declared class.
type Class struct {
	Name   string
	Base   *Class // nil if none
	Fields []*Field
	// Methods declared (via prototype or inline definition) in this
	// class, in declaration order.
	Methods []*Method
	Decl    *ast.ClassDecl
}

// InheritsFrom reports whether c is cl or inherits (transitively) from cl.
func (c *Class) InheritsFrom(cl *Class) bool {
	for x := c; x != nil; x = x.Base {
		if x == cl {
			return true
		}
	}
	return false
}

// Related reports whether the two classes are on one inheritance chain.
func (c *Class) Related(cl *Class) bool {
	return c.InheritsFrom(cl) || cl.InheritsFrom(c)
}

// FieldByName finds a field by name, searching the inheritance chain.
func (c *Class) FieldByName(name string) *Field {
	for x := c; x != nil; x = x.Base {
		for _, f := range x.Fields {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// MethodByName finds a method by name, searching the inheritance chain.
func (c *Class) MethodByName(name string) *Method {
	for x := c; x != nil; x = x.Base {
		for _, m := range x.Methods {
			if m.Name == name {
				return m
			}
		}
	}
	return nil
}

// Field is an instance variable.
type Field struct {
	Name  string
	Type  Type
	Class *Class // declaring class
	Index int    // index within the declaring class
}

// QualName returns "class.field".
func (f *Field) QualName() string { return f.Class.Name + "." + f.Name }

// Param is a formal parameter.
type Param struct {
	Name  string
	Type  Type
	Index int
	Decl  *ast.Param
}

// IsRef reports whether the parameter is a reference parameter.
func (p *Param) IsRef() bool { return IsReference(p.Type) }

// Method is a method (Class != nil) or a free function (Class == nil).
type Method struct {
	ID     int
	Class  *Class
	Name   string
	Params []*Param
	Ret    Type
	Def    *ast.MethodDef
	// CallSites are the non-builtin call sites in the body, in source
	// order.
	CallSites []*CallSite
	// Locals maps each local variable name to its type (loop variables
	// reusing a name share an entry; the checker rejects conflicting
	// reuse).
	Locals map[string]Type
}

// FullName returns "class::name" or just the name for free functions.
func (m *Method) FullName() string {
	if m.Class == nil {
		return m.Name
	}
	return m.Class.Name + "::" + m.Name
}

// ParamByName returns the named parameter, or nil.
func (m *Method) ParamByName(name string) *Param {
	for _, p := range m.Params {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// ReferenceParams returns the method's reference parameters.
func (m *Method) ReferenceParams() []*Param {
	var out []*Param
	for _, p := range m.Params {
		if p.IsRef() {
			out = append(out, p)
		}
	}
	return out
}

// CallSite is one non-builtin call site.
type CallSite struct {
	ID     int
	Call   *ast.CallExpr
	Caller *Method
	Callee *Method
}

// Global is a global variable (class-typed per the dialect).
type Global struct {
	Name  string
	Class *Class
	Decl  *ast.GlobalVar
}

// ConstVal is a named compile-time constant.
type ConstVal struct {
	IsInt bool
	I     int64
	F     float64
}

// AsFloat returns the constant as a float64.
func (c ConstVal) AsFloat() float64 {
	if c.IsInt {
		return float64(c.I)
	}
	return c.F
}

// Builtin describes one builtin function.
type Builtin struct {
	Name   string
	Params []Type
	Ret    Type
	IsIO   bool
	// Variadic builtins (print) accept any argument types.
	Variadic bool
}

// Builtins is the builtin function table. Math builtins are pure; print
// builtins are flagged IsIO and make enclosing extents unparallelizable.
var Builtins = map[string]*Builtin{
	"sqrt":  {Name: "sqrt", Params: []Type{Basic(Double)}, Ret: Basic(Double)},
	"fabs":  {Name: "fabs", Params: []Type{Basic(Double)}, Ret: Basic(Double)},
	"exp":   {Name: "exp", Params: []Type{Basic(Double)}, Ret: Basic(Double)},
	"log":   {Name: "log", Params: []Type{Basic(Double)}, Ret: Basic(Double)},
	"floor": {Name: "floor", Params: []Type{Basic(Double)}, Ret: Basic(Double)},
	"sin":   {Name: "sin", Params: []Type{Basic(Double)}, Ret: Basic(Double)},
	"cos":   {Name: "cos", Params: []Type{Basic(Double)}, Ret: Basic(Double)},
	"pow":   {Name: "pow", Params: []Type{Basic(Double), Basic(Double)}, Ret: Basic(Double)},
	"print": {Name: "print", Ret: Basic(Void), IsIO: true, Variadic: true},
}

// Program is a fully checked program.
type Program struct {
	Classes   map[string]*Class
	ClassList []*Class // declaration order
	Methods   []*Method
	Funcs     map[string]*Method // free functions by name
	Globals   map[string]*Global
	GlobalSeq []*Global
	Consts    map[string]ConstVal
	CallSites []*CallSite
	Main      *Method // free function "main", if present

	// ExprType records the checked type of every expression.
	ExprType map[ast.Expr]Type
	// DeclType records the resolved type of every local declaration.
	DeclType map[*ast.DeclStmt]Type
	// EnclosingMethod maps each call site ID back to its method (same
	// as CallSites[id].Caller; kept for O(1) audits).
}

// TypeOf returns the checked type of e.
func (p *Program) TypeOf(e ast.Expr) Type { return p.ExprType[e] }

// MethodByFullName resolves "class::name" or a free-function name.
func (p *Program) MethodByFullName(full string) *Method {
	for _, m := range p.Methods {
		if m.FullName() == full {
			return m
		}
	}
	return nil
}
