package types

import (
	"fmt"
	"strings"

	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
)

// checker carries the state of one Check run.
type checker struct {
	prog   *Program
	errors []error

	// per-method state
	method *Method
	scopes []map[string]Type // local scopes, innermost last
}

// Check type-checks the files (in order) and returns the checked
// program. Class, constant, and global declarations are visible to all
// files regardless of order within a file set.
func Check(files ...*ast.File) (*Program, error) {
	c := &checker{prog: &Program{
		Classes:  make(map[string]*Class),
		Funcs:    make(map[string]*Method),
		Globals:  make(map[string]*Global),
		Consts:   make(map[string]ConstVal),
		ExprType: make(map[ast.Expr]Type),
		DeclType: make(map[*ast.DeclStmt]Type),
	}}

	// Pass 1: class names.
	for _, f := range files {
		for _, d := range f.Decls {
			if cd, ok := d.(*ast.ClassDecl); ok {
				if _, dup := c.prog.Classes[cd.Name]; dup {
					c.errorf(cd.Pos(), "class %s redeclared", cd.Name)
					continue
				}
				cl := &Class{Name: cd.Name, Decl: cd}
				c.prog.Classes[cd.Name] = cl
				c.prog.ClassList = append(c.prog.ClassList, cl)
			}
		}
	}

	// Pass 2: constants (may be referenced by array dimensions).
	for _, f := range files {
		for _, d := range f.Decls {
			if kd, ok := d.(*ast.ConstDecl); ok {
				c.checkConstDecl(kd)
			}
		}
	}

	// Pass 3: class bases, fields, method signatures.
	for _, f := range files {
		for _, d := range f.Decls {
			if cd, ok := d.(*ast.ClassDecl); ok {
				c.checkClassHeader(cd)
			}
		}
	}
	c.checkInheritanceCycles()

	// Pass 4: globals and free-function signatures.
	for _, f := range files {
		for _, d := range f.Decls {
			switch dd := d.(type) {
			case *ast.GlobalVar:
				c.checkGlobal(dd)
			case *ast.MethodDef:
				if dd.ClassName == "" {
					c.declareFreeFunc(dd)
				}
			}
		}
	}

	// Pass 5: bind out-of-line method bodies to their declarations.
	for _, f := range files {
		for _, d := range f.Decls {
			if md, ok := d.(*ast.MethodDef); ok && md.ClassName != "" {
				c.bindMethodDef(md)
			}
		}
	}

	// Pass 6: check all bodies and number call sites in a deterministic
	// order (class declaration order, then free functions).
	for _, cl := range c.prog.ClassList {
		for _, m := range cl.Methods {
			c.checkBody(m)
		}
	}
	for _, f := range files {
		for _, d := range f.Decls {
			if md, ok := d.(*ast.MethodDef); ok && md.ClassName == "" {
				c.checkBody(c.prog.Funcs[md.Name])
			}
		}
	}

	if m, ok := c.prog.Funcs["main"]; ok {
		c.prog.Main = m
	}
	if len(c.errors) > 0 {
		var sb strings.Builder
		for i, e := range c.errors {
			if i > 0 {
				sb.WriteByte('\n')
			}
			sb.WriteString(e.Error())
		}
		return c.prog, fmt.Errorf("%s", sb.String())
	}
	return c.prog, nil
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errors = append(c.errors, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// ---------------------------------------------------------------------
// Declarations

func (c *checker) checkConstDecl(kd *ast.ConstDecl) {
	v, ok := c.evalConst(kd.Value)
	if !ok {
		c.errorf(kd.Pos(), "constant %s: initializer is not a compile-time constant", kd.Name)
		return
	}
	if kd.Type.Kind == ast.TInt && !v.IsInt {
		c.errorf(kd.Pos(), "constant %s: int constant initialized with float", kd.Name)
		return
	}
	if kd.Type.Kind == ast.TDouble && v.IsInt {
		v = ConstVal{IsInt: false, F: float64(v.I)}
	}
	if _, dup := c.prog.Consts[kd.Name]; dup {
		c.errorf(kd.Pos(), "constant %s redeclared", kd.Name)
		return
	}
	c.prog.Consts[kd.Name] = v
}

// evalConst evaluates a compile-time constant expression built from
// literals, named constants, unary minus, and the four arithmetic
// operators.
func (c *checker) evalConst(e ast.Expr) (ConstVal, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return ConstVal{IsInt: true, I: x.Value}, true
	case *ast.FloatLit:
		return ConstVal{F: x.Value}, true
	case *ast.Ident:
		v, ok := c.prog.Consts[x.Name]
		return v, ok
	case *ast.Unary:
		if x.Op != token.MINUS {
			return ConstVal{}, false
		}
		v, ok := c.evalConst(x.X)
		if !ok {
			return ConstVal{}, false
		}
		if v.IsInt {
			return ConstVal{IsInt: true, I: -v.I}, true
		}
		return ConstVal{F: -v.F}, true
	case *ast.Binary:
		a, ok1 := c.evalConst(x.X)
		b, ok2 := c.evalConst(x.Y)
		if !ok1 || !ok2 {
			return ConstVal{}, false
		}
		if a.IsInt && b.IsInt {
			switch x.Op {
			case token.PLUS:
				return ConstVal{IsInt: true, I: a.I + b.I}, true
			case token.MINUS:
				return ConstVal{IsInt: true, I: a.I - b.I}, true
			case token.STAR:
				return ConstVal{IsInt: true, I: a.I * b.I}, true
			case token.SLASH:
				if b.I == 0 {
					return ConstVal{}, false
				}
				return ConstVal{IsInt: true, I: a.I / b.I}, true
			}
			return ConstVal{}, false
		}
		af, bf := a.AsFloat(), b.AsFloat()
		switch x.Op {
		case token.PLUS:
			return ConstVal{F: af + bf}, true
		case token.MINUS:
			return ConstVal{F: af - bf}, true
		case token.STAR:
			return ConstVal{F: af * bf}, true
		case token.SLASH:
			return ConstVal{F: af / bf}, true
		}
	}
	return ConstVal{}, false
}

// resolveType converts a syntactic type to a semantic one. kindHint
// distinguishes contexts: fields and locals treat `cl` (no pointer) as a
// nested object; parameters of pointer-to-primitive are reference
// parameters.
func (c *checker) resolveType(te *ast.TypeExpr, pos token.Pos) Type {
	var base Type
	switch te.Kind {
	case ast.TInt:
		base = Basic(Int)
	case ast.TDouble:
		base = Basic(Double)
	case ast.TBool:
		base = Basic(Bool)
	case ast.TVoid:
		base = Basic(Void)
	case ast.TClass:
		cl, ok := c.prog.Classes[te.ClassName]
		if !ok {
			c.errorf(pos, "undefined class %s", te.ClassName)
			return Basic(Int)
		}
		if te.Ptr {
			base = Pointer{Class: cl}
		} else {
			base = Object{Class: cl}
		}
	}
	if te.Ptr && te.Kind != ast.TClass {
		b := base.(Basic)
		if b == Void {
			c.errorf(pos, "void* is not in the dialect")
			return Basic(Int)
		}
		base = PrimPointer{Elem: b}
	}
	// Apply array dimensions innermost-last.
	for i := len(te.ArrayDims) - 1; i >= 0; i-- {
		dim := te.ArrayDims[i]
		if dim == nil {
			base = Array{Elem: base, Len: -1}
			continue
		}
		v, ok := c.evalConst(dim)
		if !ok || !v.IsInt || v.I <= 0 {
			c.errorf(pos, "array dimension must be a positive integer constant")
			base = Array{Elem: base, Len: 1}
			continue
		}
		base = Array{Elem: base, Len: int(v.I)}
	}
	return base
}

func (c *checker) checkClassHeader(cd *ast.ClassDecl) {
	cl := c.prog.Classes[cd.Name]
	if cd.Base != "" {
		base, ok := c.prog.Classes[cd.Base]
		if !ok {
			c.errorf(cd.Pos(), "class %s: undefined base class %s", cd.Name, cd.Base)
		} else {
			cl.Base = base
		}
	}
	for _, fd := range cd.Fields {
		t := c.resolveType(fd.Type, fd.Pos())
		if b, ok := t.(Basic); ok && (b == Void) {
			c.errorf(fd.Pos(), "field %s.%s: void field", cd.Name, fd.Name)
			continue
		}
		if _, ok := t.(PrimPointer); ok {
			c.errorf(fd.Pos(), "field %s.%s: pointers to primitives may only appear as parameters", cd.Name, fd.Name)
			continue
		}
		if a, ok := t.(Array); ok && a.Len < 0 {
			c.errorf(fd.Pos(), "field %s.%s: unsized array", cd.Name, fd.Name)
			continue
		}
		cl.Fields = append(cl.Fields, &Field{
			Name: fd.Name, Type: t, Class: cl, Index: len(cl.Fields),
		})
	}
	declareMethod := func(name string, ret *ast.TypeExpr, params []*ast.Param, def *ast.MethodDef, pos token.Pos) {
		m := &Method{
			ID:     len(c.prog.Methods),
			Class:  cl,
			Name:   name,
			Ret:    c.resolveType(ret, pos),
			Def:    def,
			Locals: make(map[string]Type),
		}
		for i, p := range params {
			pt := c.resolveType(p.Type, p.Pos())
			m.Params = append(m.Params, &Param{Name: p.Name, Type: pt, Index: i, Decl: p})
		}
		for _, existing := range cl.Methods {
			if existing.Name == name {
				c.errorf(pos, "method %s::%s redeclared (overloading is not in the dialect)", cl.Name, name)
				return
			}
		}
		cl.Methods = append(cl.Methods, m)
		c.prog.Methods = append(c.prog.Methods, m)
	}
	for _, proto := range cd.Protos {
		declareMethod(proto.Name, proto.RetType, proto.Params, nil, proto.Pos())
	}
	for _, md := range cd.Inline {
		declareMethod(md.Name, md.RetType, md.Params, md, md.Pos())
	}
}

func (c *checker) checkInheritanceCycles() {
	for _, cl := range c.prog.ClassList {
		slow, fast := cl, cl
		for fast != nil && fast.Base != nil {
			slow = slow.Base
			fast = fast.Base.Base
			if slow == fast && slow != nil {
				c.errorf(cl.Decl.Pos(), "inheritance cycle involving class %s", cl.Name)
				cl.Base = nil
				return
			}
		}
	}
}

func (c *checker) checkGlobal(gv *ast.GlobalVar) {
	if gv.Type.Kind != ast.TClass || gv.Type.Ptr {
		c.errorf(gv.Pos(), "global %s: globals must be class types (dialect §6.1)", gv.Name)
		return
	}
	cl, ok := c.prog.Classes[gv.Type.ClassName]
	if !ok {
		c.errorf(gv.Pos(), "global %s: undefined class %s", gv.Name, gv.Type.ClassName)
		return
	}
	if _, dup := c.prog.Globals[gv.Name]; dup {
		c.errorf(gv.Pos(), "global %s redeclared", gv.Name)
		return
	}
	g := &Global{Name: gv.Name, Class: cl, Decl: gv}
	c.prog.Globals[gv.Name] = g
	c.prog.GlobalSeq = append(c.prog.GlobalSeq, g)
}

func (c *checker) declareFreeFunc(md *ast.MethodDef) {
	if _, dup := c.prog.Funcs[md.Name]; dup {
		c.errorf(md.Pos(), "function %s redeclared", md.Name)
		return
	}
	m := &Method{
		ID:     len(c.prog.Methods),
		Name:   md.Name,
		Ret:    c.resolveType(md.RetType, md.Pos()),
		Def:    md,
		Locals: make(map[string]Type),
	}
	for i, p := range md.Params {
		pt := c.resolveType(p.Type, p.Pos())
		m.Params = append(m.Params, &Param{Name: p.Name, Type: pt, Index: i, Decl: p})
	}
	c.prog.Funcs[md.Name] = m
	c.prog.Methods = append(c.prog.Methods, m)
}

func (c *checker) bindMethodDef(md *ast.MethodDef) {
	cl, ok := c.prog.Classes[md.ClassName]
	if !ok {
		c.errorf(md.Pos(), "method definition for undefined class %s", md.ClassName)
		return
	}
	var m *Method
	for _, mm := range cl.Methods {
		if mm.Name == md.Name {
			m = mm
			break
		}
	}
	if m == nil {
		c.errorf(md.Pos(), "no prototype for %s::%s in class body", md.ClassName, md.Name)
		return
	}
	if m.Def != nil {
		c.errorf(md.Pos(), "%s::%s defined twice", md.ClassName, md.Name)
		return
	}
	// The definition's parameter list wins (prototypes and definitions
	// must agree in arity; we verify types element-wise).
	if len(md.Params) != len(m.Params) {
		c.errorf(md.Pos(), "%s::%s: definition has %d parameters, prototype has %d",
			md.ClassName, md.Name, len(md.Params), len(m.Params))
		return
	}
	for i, p := range md.Params {
		pt := c.resolveType(p.Type, p.Pos())
		if !Equal(pt, m.Params[i].Type) {
			c.errorf(p.Pos(), "%s::%s: parameter %d type %s differs from prototype %s",
				md.ClassName, md.Name, i+1, pt, m.Params[i].Type)
		}
		m.Params[i].Name = p.Name
		m.Params[i].Decl = p
	}
	rt := c.resolveType(md.RetType, md.Pos())
	if !Equal(rt, m.Ret) {
		c.errorf(md.Pos(), "%s::%s: return type %s differs from prototype %s",
			md.ClassName, md.Name, rt, m.Ret)
	}
	m.Def = md
}
