// Package token defines the lexical tokens of the mini-C++ dialect
// accepted by the commutativity-analysis compiler (the subset described
// in §6.1 of Rinard & Diniz, PLDI 1996).
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds.
const (
	// Special.
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT     // walksub
	INTLIT    // 123
	FLOATLIT  // 1.5, 4.0e-3
	STRINGLIT // "hello" (only for print builtins)

	// Operators and delimiters.
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	ASSIGN   // =
	PLUSEQ   // +=
	MINUSEQ  // -=
	STAREQ   // *=
	SLASHEQ  // /=
	INC      // ++
	DEC      // --
	EQ       // ==
	NEQ      // !=
	LT       // <
	GT       // >
	LEQ      // <=
	GEQ      // >=
	AND      // &&
	OR       // ||
	NOT      // !
	AMP      // &
	ARROW    // ->
	DOT      // .
	COMMA    // ,
	SEMI     // ;
	COLON    // :
	SCOPE    // ::
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]

	// Keywords.
	KWCLASS   // class
	KWPUBLIC  // public
	KWPRIVATE // private
	KWCONST   // const
	KWINT     // int
	KWDOUBLE  // double
	KWBOOLEAN // boolean
	KWVOID    // void
	KWIF      // if
	KWELSE    // else
	KWFOR     // for
	KWWHILE   // while
	KWRETURN  // return
	KWNEW     // new
	KWTHIS    // this
	KWNULL    // NULL (also nullptr)
	KWTRUE    // TRUE / true
	KWFALSE   // FALSE / false
	KWCAST    // dynamic_cast
)

var kindNames = map[Kind]string{
	ILLEGAL:   "ILLEGAL",
	EOF:       "EOF",
	IDENT:     "identifier",
	INTLIT:    "integer literal",
	FLOATLIT:  "float literal",
	STRINGLIT: "string literal",
	PLUS:      "+",
	MINUS:     "-",
	STAR:      "*",
	SLASH:     "/",
	PERCENT:   "%",
	ASSIGN:    "=",
	PLUSEQ:    "+=",
	MINUSEQ:   "-=",
	STAREQ:    "*=",
	SLASHEQ:   "/=",
	INC:       "++",
	DEC:       "--",
	EQ:        "==",
	NEQ:       "!=",
	LT:        "<",
	GT:        ">",
	LEQ:       "<=",
	GEQ:       ">=",
	AND:       "&&",
	OR:        "||",
	NOT:       "!",
	AMP:       "&",
	ARROW:     "->",
	DOT:       ".",
	COMMA:     ",",
	SEMI:      ";",
	COLON:     ":",
	SCOPE:     "::",
	LPAREN:    "(",
	RPAREN:    ")",
	LBRACE:    "{",
	RBRACE:    "}",
	LBRACKET:  "[",
	RBRACKET:  "]",
	KWCLASS:   "class",
	KWPUBLIC:  "public",
	KWPRIVATE: "private",
	KWCONST:   "const",
	KWINT:     "int",
	KWDOUBLE:  "double",
	KWBOOLEAN: "boolean",
	KWVOID:    "void",
	KWIF:      "if",
	KWELSE:    "else",
	KWFOR:     "for",
	KWWHILE:   "while",
	KWRETURN:  "return",
	KWNEW:     "new",
	KWTHIS:    "this",
	KWNULL:    "NULL",
	KWTRUE:    "TRUE",
	KWFALSE:   "FALSE",
	KWCAST:    "dynamic_cast",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps source spellings to keyword kinds.
var Keywords = map[string]Kind{
	"class":        KWCLASS,
	"public":       KWPUBLIC,
	"private":      KWPRIVATE,
	"const":        KWCONST,
	"int":          KWINT,
	"double":       KWDOUBLE,
	"float":        KWDOUBLE, // treated as double
	"boolean":      KWBOOLEAN,
	"bool":         KWBOOLEAN,
	"void":         KWVOID,
	"if":           KWIF,
	"else":         KWELSE,
	"for":          KWFOR,
	"while":        KWWHILE,
	"return":       KWRETURN,
	"new":          KWNEW,
	"this":         KWTHIS,
	"NULL":         KWNULL,
	"nullptr":      KWNULL,
	"TRUE":         KWTRUE,
	"true":         KWTRUE,
	"FALSE":        KWFALSE,
	"false":        KWFALSE,
	"dynamic_cast": KWCAST,
}

// Pos is a position in a source file.
type Pos struct {
	Line int // 1-based
	Col  int // 1-based
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its source position.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT and literals
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, FLOATLIT, STRINGLIT:
		return fmt.Sprintf("%s %q", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// Precedence returns the binary operator precedence for the kind, or 0
// if the kind is not a binary operator. Higher binds tighter.
func (k Kind) Precedence() int {
	switch k {
	case OR:
		return 1
	case AND:
		return 2
	case EQ, NEQ:
		return 3
	case LT, GT, LEQ, GEQ:
		return 4
	case PLUS, MINUS:
		return 5
	case STAR, SLASH, PERCENT:
		return 6
	}
	return 0
}

// IsAssign reports whether the kind is an assignment operator
// (=, +=, -=, *=, /=).
func (k Kind) IsAssign() bool {
	switch k {
	case ASSIGN, PLUSEQ, MINUSEQ, STAREQ, SLASHEQ:
		return true
	}
	return false
}
