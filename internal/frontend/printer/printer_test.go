package printer_test

import (
	"testing"

	"commute/internal/apps/src"
	"commute/internal/frontend/parser"
	"commute/internal/frontend/printer"
	"commute/internal/frontend/types"
)

// TestRoundTrip: parse → print → parse yields a program that prints
// identically (fixed point after one round), and the reprinted source
// still type checks with the same class/method structure.
func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name, source string
	}{
		{"graph", src.Graph},
		{"barneshut", src.BarnesHut},
		{"water", src.Water},
	} {
		f1, err := parser.Parse(tc.name, tc.source)
		if err != nil {
			t.Fatalf("%s: parse original: %v", tc.name, err)
		}
		printed1 := printer.File(f1)

		f2, err := parser.Parse(tc.name+".printed", printed1)
		if err != nil {
			t.Fatalf("%s: reparse printed source: %v\n%s", tc.name, err, printed1)
		}
		printed2 := printer.File(f2)
		if printed1 != printed2 {
			t.Errorf("%s: printing is not a fixed point after one round", tc.name)
		}

		p1, err := types.Check(f1)
		if err != nil {
			t.Fatalf("%s: check original: %v", tc.name, err)
		}
		p2, err := types.Check(f2)
		if err != nil {
			t.Fatalf("%s: check printed: %v", tc.name, err)
		}
		if len(p1.Methods) != len(p2.Methods) || len(p1.ClassList) != len(p2.ClassList) ||
			len(p1.CallSites) != len(p2.CallSites) {
			t.Errorf("%s: structure changed: methods %d→%d classes %d→%d sites %d→%d",
				tc.name, len(p1.Methods), len(p2.Methods),
				len(p1.ClassList), len(p2.ClassList),
				len(p1.CallSites), len(p2.CallSites))
		}
	}
}

// TestExprPrecedence: printing inserts parentheses exactly where the
// tree shape requires them.
func TestExprPrecedence(t *testing.T) {
	srcText := `
class a {
public:
  int x;
  double d;
  boolean b;
  void m();
};
void a::m() {
  x = (x + 1) * (x - 2);
  x = x + 1 * x - 2;
  d = -(d + 1.0) / (d * 2.0);
  b = !(x < 1) && (x == 2 || x != 3);
  x = x % (x + 1);
}
`
	f, err := parser.Parse("prec.mc", srcText)
	if err != nil {
		t.Fatal(err)
	}
	printed := printer.File(f)
	f2, err := parser.Parse("prec2.mc", printed)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, printed)
	}
	if printer.File(f2) != printed {
		t.Errorf("precedence round trip failed:\n%s\nvs\n%s", printed, printer.File(f2))
	}
	// Semantic check: both versions compute the same result.
	for _, want := range []string{"(x + 1) * (x - 2)", "x + 1 * x - 2"} {
		if !contains(printed, want) {
			t.Errorf("printed source missing %q:\n%s", want, printed)
		}
	}
}

func contains(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (func() bool {
		for i := 0; i+len(needle) <= len(haystack); i++ {
			if haystack[i:i+len(needle)] == needle {
				return true
			}
		}
		return false
	})()
}
