// Package printer renders mini-C++ ASTs back to source text. The
// code generator uses it to emit the transformed parallel program (the
// paper's source-to-source output, §6.1), and the tests use it for
// parse→print→parse round trips.
package printer

import (
	"fmt"
	"strconv"
	"strings"

	"commute/internal/frontend/ast"
	"commute/internal/frontend/token"
)

// File renders a complete source file.
func File(f *ast.File) string {
	p := &printer{}
	for i, d := range f.Decls {
		if i > 0 {
			p.nl()
		}
		p.decl(d)
	}
	return p.sb.String()
}

// Method renders a single method definition.
func Method(md *ast.MethodDef) string {
	p := &printer{}
	p.methodDef(md)
	return p.sb.String()
}

// Stmt renders a statement at the given indent level.
func Stmt(s ast.Stmt, indent int) string {
	p := &printer{indent: indent}
	p.stmt(s)
	return p.sb.String()
}

// Expr renders an expression.
func Expr(e ast.Expr) string {
	p := &printer{}
	p.expr(e, 0)
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) w(s string)                { p.sb.WriteString(s) }
func (p *printer) f(format string, a ...any) { fmt.Fprintf(&p.sb, format, a...) }
func (p *printer) nl()                       { p.sb.WriteByte('\n') }
func (p *printer) line(format string, a ...any) {
	p.pad()
	p.f(format, a...)
	p.nl()
}
func (p *printer) pad() { p.w(strings.Repeat("  ", p.indent)) }

// ---------------------------------------------------------------------
// Declarations

func (p *printer) decl(d ast.Decl) {
	switch x := d.(type) {
	case *ast.ConstDecl:
		p.line("const %s %s = %s;", typeBase(x.Type), x.Name, Expr(x.Value))
	case *ast.GlobalVar:
		p.line("%s %s;", typeBase(x.Type), x.Name)
	case *ast.ClassDecl:
		p.classDecl(x)
	case *ast.MethodDef:
		p.methodDef(x)
	}
}

func (p *printer) classDecl(cd *ast.ClassDecl) {
	if cd.Base != "" {
		p.line("class %s : public %s {", cd.Name, cd.Base)
	} else {
		p.line("class %s {", cd.Name)
	}
	p.line("public:")
	p.indent++
	for _, fd := range cd.Fields {
		p.line("%s;", declarator(fd.Type, fd.Name))
	}
	for _, proto := range cd.Protos {
		p.line("%s %s(%s);", typeBase(proto.RetType), proto.Name, params(proto.Params))
	}
	for _, md := range cd.Inline {
		p.pad()
		p.f("%s %s(%s) ", typeBase(md.RetType), md.Name, params(md.Params))
		p.block(md.Body)
		p.nl()
	}
	p.indent--
	p.line("};")
}

func (p *printer) methodDef(md *ast.MethodDef) {
	p.pad()
	if md.ClassName != "" {
		p.f("%s %s::%s(%s) ", typeBase(md.RetType), md.ClassName, md.Name, params(md.Params))
	} else {
		p.f("%s %s(%s) ", typeBase(md.RetType), md.Name, params(md.Params))
	}
	p.block(md.Body)
	p.nl()
}

func params(ps []*ast.Param) string {
	parts := make([]string, len(ps))
	for i, prm := range ps {
		parts[i] = declarator(prm.Type, prm.Name)
	}
	return strings.Join(parts, ", ")
}

// typeBase renders the non-declarator part of a type.
func typeBase(te *ast.TypeExpr) string {
	var base string
	switch te.Kind {
	case ast.TInt:
		base = "int"
	case ast.TDouble:
		base = "double"
	case ast.TBool:
		base = "boolean"
	case ast.TVoid:
		base = "void"
	case ast.TClass:
		base = te.ClassName
	}
	if te.Ptr {
		base += " *"
	}
	return base
}

// declarator renders "type name[dims]".
func declarator(te *ast.TypeExpr, name string) string {
	out := typeBase(te)
	if !strings.HasSuffix(out, "*") {
		out += " "
	}
	out += name
	for _, dim := range te.ArrayDims {
		if dim == nil {
			out += "[]"
		} else {
			out += "[" + Expr(dim) + "]"
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Statements

func (p *printer) block(b *ast.Block) {
	p.w("{")
	p.nl()
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.pad()
	p.w("}")
}

func (p *printer) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.Block:
		p.pad()
		p.block(x)
		p.nl()
	case *ast.DeclStmt:
		if x.Init != nil {
			p.line("%s = %s;", declarator(x.Type, x.Name), Expr(x.Init))
		} else {
			p.line("%s;", declarator(x.Type, x.Name))
		}
	case *ast.ExprStmt:
		p.line("%s;", Expr(x.X))
	case *ast.IfStmt:
		p.pad()
		p.f("if (%s) ", Expr(x.Cond))
		p.inlineStmt(x.Then)
		if x.Else != nil {
			p.w(" else ")
			p.inlineStmt(x.Else)
		}
		p.nl()
	case *ast.ForStmt:
		p.pad()
		init, post := "", ""
		if x.Init != nil {
			init = strings.TrimSuffix(strings.TrimSpace(Stmt(x.Init, 0)), ";")
		}
		cond := ""
		if x.Cond != nil {
			cond = Expr(x.Cond)
		}
		if x.Post != nil {
			post = strings.TrimSuffix(strings.TrimSpace(Stmt(x.Post, 0)), ";")
		}
		p.f("for (%s; %s; %s) ", init, cond, post)
		p.inlineStmt(x.Body)
		p.nl()
	case *ast.WhileStmt:
		p.pad()
		p.f("while (%s) ", Expr(x.Cond))
		p.inlineStmt(x.Body)
		p.nl()
	case *ast.ReturnStmt:
		if x.X != nil {
			p.line("return %s;", Expr(x.X))
		} else {
			p.line("return;")
		}
	}
}

// inlineStmt renders a statement as the body of if/for/while without a
// trailing newline.
func (p *printer) inlineStmt(s ast.Stmt) {
	if b, ok := s.(*ast.Block); ok {
		p.block(b)
		return
	}
	p.nl()
	p.indent++
	p.stmt(s)
	p.indent--
	p.pad()
	// Single-statement bodies end here; the caller adds the newline.
	p.trimTrailingPad()
}

// trimTrailingPad removes indentation emitted after a single-statement
// body (cosmetic).
func (p *printer) trimTrailingPad() {
	s := p.sb.String()
	trimmed := strings.TrimRight(s, " ")
	if len(trimmed) != len(s) {
		p.sb.Reset()
		p.sb.WriteString(trimmed)
	}
}

// ---------------------------------------------------------------------
// Expressions

// expr renders with minimal parentheses using precedence climbing.
func (p *printer) expr(e ast.Expr, minPrec int) {
	switch x := e.(type) {
	case *ast.IntLit:
		p.w(strconv.FormatInt(x.Value, 10))
	case *ast.FloatLit:
		s := strconv.FormatFloat(x.Value, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		p.w(s)
	case *ast.BoolLit:
		if x.Value {
			p.w("TRUE")
		} else {
			p.w("FALSE")
		}
	case *ast.NullLit:
		p.w("NULL")
	case *ast.StringLit:
		p.w(strconv.Quote(x.Value))
	case *ast.ThisExpr:
		p.w("this")
	case *ast.Ident:
		p.w(x.Name)
	case *ast.FieldAccess:
		p.postfixBase(x.X)
		if x.Arrow {
			p.w("->")
		} else {
			p.w(".")
		}
		p.w(x.Name)
	case *ast.IndexExpr:
		p.postfixBase(x.X)
		p.w("[")
		p.expr(x.Index, 0)
		p.w("]")
	case *ast.CallExpr:
		if x.Recv != nil {
			p.postfixBase(x.Recv)
			if x.Arrow {
				p.w("->")
			} else {
				p.w(".")
			}
		}
		p.w(x.Method)
		p.w("(")
		for i, a := range x.Args {
			if i > 0 {
				p.w(", ")
			}
			p.expr(a, 0)
		}
		p.w(")")
	case *ast.NewExpr:
		p.w("new " + x.ClassName)
	case *ast.CastExpr:
		if x.Dynamic {
			p.f("dynamic_cast<%s*>(", x.ClassName)
			p.expr(x.X, 0)
			p.w(")")
		} else {
			p.f("(%s*)", x.ClassName)
			p.expr(x.X, 8)
		}
	case *ast.Unary:
		p.w(x.Op.String())
		p.expr(x.X, 7)
	case *ast.Binary:
		prec := x.Op.Precedence()
		if prec < minPrec {
			p.w("(")
		}
		p.expr(x.X, prec)
		p.f(" %s ", x.Op)
		p.expr(x.Y, prec+1)
		if prec < minPrec {
			p.w(")")
		}
	case *ast.Assign:
		if minPrec > 0 {
			p.w("(")
		}
		p.expr(x.LHS, 1)
		if x.Op == token.ASSIGN {
			p.w(" = ")
		} else {
			p.f(" %s ", x.Op)
		}
		p.expr(x.RHS, 0)
		if minPrec > 0 {
			p.w(")")
		}
	}
}

// postfixBase renders the base of a postfix chain, parenthesizing
// non-primary expressions.
func (p *printer) postfixBase(e ast.Expr) {
	switch e.(type) {
	case *ast.Binary, *ast.Unary, *ast.Assign, *ast.CastExpr:
		p.w("(")
		p.expr(e, 0)
		p.w(")")
	default:
		p.expr(e, 8)
	}
}
