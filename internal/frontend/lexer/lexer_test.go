package lexer

import (
	"testing"

	"commute/internal/frontend/token"
)

func kinds(ts []token.Token) []token.Kind {
	out := make([]token.Kind, len(ts))
	for i, t := range ts {
		out[i] = t.Kind
	}
	return out
}

func TestOperatorsAndDelimiters(t *testing.T) {
	src := `+ - * / % = += -= *= /= ++ -- == != < > <= >= && || ! -> . , ; : :: ( ) { } [ ]`
	want := []token.Kind{
		token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT,
		token.ASSIGN, token.PLUSEQ, token.MINUSEQ, token.STAREQ, token.SLASHEQ,
		token.INC, token.DEC, token.EQ, token.NEQ, token.LT, token.GT,
		token.LEQ, token.GEQ, token.AND, token.OR, token.NOT, token.ARROW,
		token.DOT, token.COMMA, token.SEMI, token.COLON, token.SCOPE,
		token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE,
		token.LBRACKET, token.RBRACKET, token.EOF,
	}
	got := kinds(New(src).All())
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdentifiers(t *testing.T) {
	src := `class graph visit TRUE FALSE NULL this new dynamic_cast int double boolean void if else for while return const public private`
	lx := New(src)
	toks := lx.All()
	wantKinds := []token.Kind{
		token.KWCLASS, token.IDENT, token.IDENT, token.KWTRUE, token.KWFALSE,
		token.KWNULL, token.KWTHIS, token.KWNEW, token.KWCAST, token.KWINT,
		token.KWDOUBLE, token.KWBOOLEAN, token.KWVOID, token.KWIF, token.KWELSE,
		token.KWFOR, token.KWWHILE, token.KWRETURN, token.KWCONST,
		token.KWPUBLIC, token.KWPRIVATE, token.EOF,
	}
	got := kinds(toks)
	if len(got) != len(wantKinds) {
		t.Fatalf("got %d tokens, want %d", len(got), len(wantKinds))
	}
	for i := range wantKinds {
		if got[i] != wantKinds[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], wantKinds[i])
		}
	}
	if toks[1].Lit != "graph" || toks[2].Lit != "visit" {
		t.Errorf("identifier literals wrong: %q %q", toks[1].Lit, toks[2].Lit)
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind token.Kind
		lit  string
	}{
		{"123", token.INTLIT, "123"},
		{"0", token.INTLIT, "0"},
		{"1.5", token.FLOATLIT, "1.5"},
		{"4.0", token.FLOATLIT, "4.0"},
		{"1e10", token.FLOATLIT, "1e10"},
		{"2.5e-3", token.FLOATLIT, "2.5e-3"},
		{"7.5E+2", token.FLOATLIT, "7.5E+2"},
	}
	for _, tc := range cases {
		toks := New(tc.src).All()
		if toks[0].Kind != tc.kind || toks[0].Lit != tc.lit {
			t.Errorf("%q: got %s %q, want %s %q", tc.src, toks[0].Kind, toks[0].Lit, tc.kind, tc.lit)
		}
	}
}

func TestComments(t *testing.T) {
	src := "a // line comment\n b /* block\ncomment */ c # preprocessor\n d"
	toks := New(src).All()
	var lits []string
	for _, tk := range toks[:len(toks)-1] {
		lits = append(lits, tk.Lit)
	}
	want := []string{"a", "b", "c", "d"}
	if len(lits) != len(want) {
		t.Fatalf("got %v, want %v", lits, want)
	}
	for i := range want {
		if lits[i] != want[i] {
			t.Errorf("token %d: got %q, want %q", i, lits[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	src := "ab\ncd e"
	toks := New(src).All()
	wants := []token.Pos{{Line: 1, Col: 1}, {Line: 2, Col: 1}, {Line: 2, Col: 4}}
	for i, w := range wants {
		if toks[i].Pos != w {
			t.Errorf("token %d position: got %v, want %v", i, toks[i].Pos, w)
		}
	}
}

func TestStringLiteral(t *testing.T) {
	toks := New(`"hello\nworld"`).All()
	if toks[0].Kind != token.STRINGLIT || toks[0].Lit != "hello\nworld" {
		t.Fatalf("got %s %q", toks[0].Kind, toks[0].Lit)
	}
}

func TestUnterminatedString(t *testing.T) {
	lx := New("\"abc")
	toks := lx.All()
	if toks[0].Kind != token.ILLEGAL {
		t.Errorf("expected ILLEGAL for unterminated string, got %s", toks[0].Kind)
	}
	if len(lx.Errors()) == 0 {
		t.Error("expected a lexer error")
	}
}

func TestUnterminatedBlockComment(t *testing.T) {
	lx := New("/* never closed")
	lx.All()
	if len(lx.Errors()) == 0 {
		t.Error("expected a lexer error for unterminated block comment")
	}
}

func TestIllegalCharacter(t *testing.T) {
	lx := New("@")
	toks := lx.All()
	if toks[0].Kind != token.ILLEGAL {
		t.Errorf("expected ILLEGAL, got %s", toks[0].Kind)
	}
}

func TestArrowVsMinus(t *testing.T) {
	toks := New("a->b - c -= d--").All()
	want := []token.Kind{
		token.IDENT, token.ARROW, token.IDENT, token.MINUS, token.IDENT,
		token.MINUSEQ, token.IDENT, token.DEC, token.EOF,
	}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestScopeVsColon(t *testing.T) {
	toks := New("graph::visit public:").All()
	want := []token.Kind{token.IDENT, token.SCOPE, token.IDENT, token.KWPUBLIC, token.COLON, token.EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}
