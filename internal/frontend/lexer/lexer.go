// Package lexer implements a hand-written scanner for the mini-C++
// dialect. It produces the token stream consumed by the parser.
package lexer

import (
	"fmt"
	"strings"

	"commute/internal/frontend/token"
)

// Lexer scans an input buffer into tokens.
type Lexer struct {
	src    string
	off    int // current byte offset
	line   int
	col    int
	errors []error
}

// New returns a Lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the scan errors encountered so far.
func (l *Lexer) Errors() []error { return l.errors }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errors = append(l.errors, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) pos() token.Pos { return token.Pos{Line: l.line, Col: l.col} }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isAlpha(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

// skipSpace consumes whitespace, //-comments, /*-comments, and
// #-preprocessor lines (which the dialect ignores).
func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '#':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token in the stream. At end of input it returns
// an EOF token indefinitely.
func (l *Lexer) Next() token.Token {
	l.skipSpace()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isAlpha(c):
		return l.scanIdent(pos)
	case isDigit(c):
		return l.scanNumber(pos)
	case c == '"':
		return l.scanString(pos)
	}
	l.advance()
	two := func(next byte, k2, k1 token.Kind) token.Token {
		if l.peek() == next {
			l.advance()
			return token.Token{Kind: k2, Pos: pos}
		}
		return token.Token{Kind: k1, Pos: pos}
	}
	switch c {
	case '+':
		if l.peek() == '+' {
			l.advance()
			return token.Token{Kind: token.INC, Pos: pos}
		}
		return two('=', token.PLUSEQ, token.PLUS)
	case '-':
		switch l.peek() {
		case '-':
			l.advance()
			return token.Token{Kind: token.DEC, Pos: pos}
		case '>':
			l.advance()
			return token.Token{Kind: token.ARROW, Pos: pos}
		}
		return two('=', token.MINUSEQ, token.MINUS)
	case '*':
		return two('=', token.STAREQ, token.STAR)
	case '/':
		return two('=', token.SLASHEQ, token.SLASH)
	case '%':
		return token.Token{Kind: token.PERCENT, Pos: pos}
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '<':
		return two('=', token.LEQ, token.LT)
	case '>':
		return two('=', token.GEQ, token.GT)
	case '&':
		return two('&', token.AND, token.AMP)
	case '|':
		if l.peek() == '|' {
			l.advance()
			return token.Token{Kind: token.OR, Pos: pos}
		}
		l.errorf(pos, "unexpected character %q (bitwise-or is not in the dialect)", c)
		return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
	case '.':
		return token.Token{Kind: token.DOT, Pos: pos}
	case ',':
		return token.Token{Kind: token.COMMA, Pos: pos}
	case ';':
		return token.Token{Kind: token.SEMI, Pos: pos}
	case ':':
		return two(':', token.SCOPE, token.COLON)
	case '(':
		return token.Token{Kind: token.LPAREN, Pos: pos}
	case ')':
		return token.Token{Kind: token.RPAREN, Pos: pos}
	case '{':
		return token.Token{Kind: token.LBRACE, Pos: pos}
	case '}':
		return token.Token{Kind: token.RBRACE, Pos: pos}
	case '[':
		return token.Token{Kind: token.LBRACKET, Pos: pos}
	case ']':
		return token.Token{Kind: token.RBRACKET, Pos: pos}
	}
	l.errorf(pos, "unexpected character %q", c)
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

func (l *Lexer) scanIdent(pos token.Pos) token.Token {
	start := l.off
	for l.off < len(l.src) && (isAlpha(l.peek()) || isDigit(l.peek())) {
		l.advance()
	}
	lit := l.src[start:l.off]
	if k, ok := token.Keywords[lit]; ok {
		return token.Token{Kind: k, Lit: lit, Pos: pos}
	}
	return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
}

func (l *Lexer) scanNumber(pos token.Pos) token.Token {
	start := l.off
	kind := token.INTLIT
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	if l.peek() == '.' && isDigit(l.peekAt(1)) {
		kind = token.FLOATLIT
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
	} else if l.peek() == '.' && !isAlpha(l.peekAt(1)) {
		// trailing-dot float like "4."
		kind = token.FLOATLIT
		l.advance()
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		save := l.off
		l.advance()
		if l.peek() == '+' || l.peek() == '-' {
			l.advance()
		}
		if isDigit(l.peek()) {
			kind = token.FLOATLIT
			for l.off < len(l.src) && isDigit(l.peek()) {
				l.advance()
			}
		} else {
			// not an exponent; rewind is impossible with line tracking,
			// but 'e' following a number with no digits is illegal anyway.
			l.errorf(pos, "malformed exponent in numeric literal")
			l.off = save
		}
	}
	return token.Token{Kind: kind, Lit: l.src[start:l.off], Pos: pos}
}

func (l *Lexer) scanString(pos token.Pos) token.Token {
	l.advance() // opening quote
	var sb strings.Builder
	for l.off < len(l.src) {
		c := l.advance()
		if c == '"' {
			return token.Token{Kind: token.STRINGLIT, Lit: sb.String(), Pos: pos}
		}
		if c == '\\' && l.off < len(l.src) {
			e := l.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '"':
				sb.WriteByte('"')
			case '\\':
				sb.WriteByte('\\')
			default:
				sb.WriteByte(e)
			}
			continue
		}
		if c == '\n' {
			break
		}
		sb.WriteByte(c)
	}
	l.errorf(pos, "unterminated string literal")
	return token.Token{Kind: token.ILLEGAL, Lit: sb.String(), Pos: pos}
}

// All scans the entire input and returns the token slice, ending with
// EOF. Convenient for tests.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}
