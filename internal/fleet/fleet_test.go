package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"commute/internal/server/api"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	shards := []string{"http://a", "http://b", "http://c"}
	r1 := NewRing(shards, 64)
	r2 := NewRing(shards, 64)

	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("fingerprint-%d", i)
		s1, s2 := r1.Lookup(key), r2.Lookup(key)
		if s1 != s2 {
			t.Fatalf("two identical rings disagree on %q: %s vs %s", key, s1, s2)
		}
		counts[s1]++
	}
	for _, s := range shards {
		share := float64(counts[s]) / keys
		if share < 0.15 || share > 0.60 {
			t.Fatalf("shard %s owns %.0f%% of keys; 64 vnodes should land in [15%%, 60%%] (got %v)", s, share*100, counts)
		}
		ringShare := r1.Share(s)
		if diff := share - ringShare; diff < -0.05 || diff > 0.05 {
			t.Fatalf("shard %s: empirical share %.3f vs ring share %.3f", s, share, ringShare)
		}
	}
}

func TestRendezvousStableUnderShardLoss(t *testing.T) {
	all := []string{"http://a", "http://b", "http://c"}
	survivors := []string{"http://a", "http://c"}
	moved := 0
	const keys = 2000
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("k%d", i)
		before := Rendezvous(key, all)
		after := Rendezvous(key, survivors)
		if before != "http://b" && before != after {
			t.Fatalf("key %q moved from live shard %s to %s when b died", key, before, after)
		}
		if before == "http://b" {
			moved++
		}
	}
	if moved == 0 || moved == keys {
		t.Fatalf("b owned %d/%d keys; rendezvous distribution broken", moved, keys)
	}
}

// testShard is a stub replica that reports which shard answered.
func testShard(t *testing.T, id string, hook func(n int64, w http.ResponseWriter) bool) *httptest.Server {
	t.Helper()
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hook != nil && hook(n.Add(1), w) {
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"shard": id, "path": r.URL.Path})
	}))
	t.Cleanup(ts.Close)
	return ts
}

func analyzeBody(app string) string {
	return fmt.Sprintf(`{"app":%q}`, app)
}

func postRouter(t *testing.T, rt *Router, body string) (int, map[string]string) {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/analyze", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	out := map[string]string{}
	json.Unmarshal(rec.Body.Bytes(), &out)
	return rec.Code, out
}

func TestRouterDeterministicFingerprintRouting(t *testing.T) {
	a := testShard(t, "a", nil)
	b := testShard(t, "b", nil)
	c := testShard(t, "c", nil)
	rt, err := NewRouter(Config{Shards: []string{a.URL, b.URL, c.URL}})
	if err != nil {
		t.Fatal(err)
	}

	// Same program → same shard, every time.
	apps := []string{"graph", "barneshut", "water", "specdisjoint", "specconflict"}
	owner := map[string]string{}
	for round := 0; round < 5; round++ {
		for _, app := range apps {
			code, out := postRouter(t, rt, analyzeBody(app))
			if code != http.StatusOK {
				t.Fatalf("analyze %s = %d", app, code)
			}
			if prev, ok := owner[app]; ok && prev != out["shard"] {
				t.Fatalf("app %s moved from shard %s to %s with all shards live", app, prev, out["shard"])
			}
			owner[app] = out["shard"]
		}
	}
	// Inline source with the same fingerprint as an app must co-route
	// with it (the router keys on fingerprint, not on request shape).
	code, out := postRouter(t, rt, `{"name":"graph.mc","source":"void main() {}"}`)
	if code != http.StatusOK {
		t.Fatalf("inline analyze = %d", code)
	}
	for round := 0; round < 3; round++ {
		_, again := postRouter(t, rt, `{"name":"graph.mc","source":"void main() {}"}`)
		if again["shard"] != out["shard"] {
			t.Fatal("identical inline program moved shards")
		}
	}
}

func TestRouterReroutesAroundDeadShard(t *testing.T) {
	a := testShard(t, "a", nil)
	b := testShard(t, "b", nil)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from the start

	rt, err := NewRouter(Config{Shards: []string{a.URL, b.URL, deadURL}, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Drive enough distinct programs that some route to the dead shard.
	sawReroute := false
	for i := 0; i < 40; i++ {
		body := fmt.Sprintf(`{"name":"p%d.mc","source":"void main() { print(%d); }"}`, i, i)
		code, out := postRouter(t, rt, body)
		if code != http.StatusOK {
			t.Fatalf("request %d = %d", i, code)
		}
		if out["shard"] != "a" && out["shard"] != "b" {
			t.Fatalf("request %d answered by %q", i, out["shard"])
		}
	}
	req := httptest.NewRequest("GET", "/statusz", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	var st api.StatusZ
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	ds := st.Shards[deadURL]
	if !ds.Down {
		t.Fatal("dead shard not marked down in statusz")
	}
	if ds.Rerouted > 0 {
		sawReroute = true
	}
	if !sawReroute {
		t.Fatalf("40 distinct programs never routed to the dead shard (counters: %+v)", st.Shards)
	}
	if ds.Errors == 0 {
		t.Fatal("dead shard has no error count")
	}
}

// gateTransport fails every request to a gated URL with a transport
// error while the gate is closed, and delegates otherwise.
type gateTransport struct {
	gated string
	open  atomic.Bool
}

func (gt *gateTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if !gt.open.Load() && strings.HasPrefix(req.URL.String(), gt.gated) {
		return nil, fmt.Errorf("gate closed for %s", gt.gated)
	}
	return http.DefaultTransport.RoundTrip(req)
}

func TestRouterProberRevivesRecoveredShard(t *testing.T) {
	a := testShard(t, "a", nil)
	b := testShard(t, "b", nil)
	gate := &gateTransport{gated: b.URL}
	// DownTTL is an hour: passive expiry cannot revive b within the
	// test, so a recovery must come from the active prober.
	rt, err := NewRouter(Config{
		Shards:        []string{a.URL, b.URL},
		Retries:       2,
		DownTTL:       time.Hour,
		ProbeInterval: 10 * time.Millisecond,
		Transport:     gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	// Drive distinct programs until b's gate failure marks it down.
	for i := 0; i < 40; i++ {
		body := fmt.Sprintf(`{"name":"p%d.mc","source":"void main() { print(%d); }"}`, i, i)
		if code, _ := postRouter(t, rt, body); code != http.StatusOK {
			t.Fatalf("request %d = %d", i, code)
		}
	}
	if !statuszShard(t, rt, b.URL).Down {
		t.Fatal("gated shard never marked down")
	}

	// Recover b and wait for a probe to notice.
	gate.open.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for statuszShard(t, rt, b.URL).Down {
		if time.Now().After(deadline) {
			t.Fatalf("prober never revived recovered shard (stats: %+v)", statuszShard(t, rt, b.URL))
		}
		time.Sleep(5 * time.Millisecond)
	}
	bs := statuszShard(t, rt, b.URL)
	if bs.Probes == 0 || bs.Revivals == 0 {
		t.Fatalf("probe counters not bumped: %+v", bs)
	}

	// Revived shard takes traffic again: its fingerprints route home.
	sawB := false
	for i := 0; i < 40 && !sawB; i++ {
		body := fmt.Sprintf(`{"name":"p%d.mc","source":"void main() { print(%d); }"}`, i, i)
		_, out := postRouter(t, rt, body)
		sawB = out["shard"] == "b"
	}
	if !sawB {
		t.Fatal("no program routed to the revived shard")
	}
}

// statuszShard fetches one shard's /statusz entry.
func statuszShard(t *testing.T, rt *Router, url string) api.ShardStats {
	t.Helper()
	req := httptest.NewRequest("GET", "/statusz", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	var st api.StatusZ
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st.Shards[url]
}

func TestRouterHonorsRetryAfterOn429(t *testing.T) {
	flaky := testShard(t, "flaky", func(n int64, w http.ResponseWriter) bool {
		if n == 1 {
			w.Header().Set("Retry-After", "0")
			writeJSON(w, http.StatusTooManyRequests, api.Error{Error: "busy"})
			return true
		}
		return false
	})
	rt, err := NewRouter(Config{Shards: []string{flaky.URL}, Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	code, out := postRouter(t, rt, analyzeBody("graph"))
	if code != http.StatusOK || out["shard"] != "flaky" {
		t.Fatalf("after 429 retry: code %d, shard %q, want 200 from flaky", code, out["shard"])
	}
	req := httptest.NewRequest("GET", "/statusz", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	var st api.StatusZ
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Shards[flaky.URL].Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Shards[flaky.URL].Retries)
	}
}

func TestRouterRetriesExhaustTo502(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	// Retries: -1 disables retrying, so the one transport failure maps
	// to a 502 rather than falling through to the no-live-shard 503.
	rt, err := NewRouter(Config{Shards: []string{deadURL}, Retries: -1, DownTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	code, _ := postRouter(t, rt, analyzeBody("graph"))
	if code != http.StatusBadGateway {
		t.Fatalf("all shards dead = %d, want 502", code)
	}
	// With the only shard marked down, the router sheds instead of
	// hammering it until the TTL expires.
	code, _ = postRouter(t, rt, analyzeBody("graph"))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("marked-down shard = %d, want 503", code)
	}
	hr := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, hr)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz with no live shards = %d, want 503", rec.Code)
	}
}
