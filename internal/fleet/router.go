package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"commute/internal/server"
	"commute/internal/server/api"
)

// Config shapes a Router. Zero fields take the documented defaults.
type Config struct {
	// Shards are the replica base URLs (e.g. "http://10.0.0.2:8080").
	Shards []string
	// VNodes is the per-shard virtual node count (default 64).
	VNodes int
	// Retries bounds forwarding attempts beyond the first: transport
	// failures reroute to another shard, 429s wait out Retry-After and
	// retry (default 2).
	Retries int
	// MaxRetryWait caps how long one 429 Retry-After hint is honored
	// (default 2s) — a misbehaving shard must not park the router.
	MaxRetryWait time.Duration
	// DownTTL is how long a shard stays marked down after a transport
	// failure before the router probes it with live traffic again
	// (default 3s).
	DownTTL time.Duration
	// MaxBody caps a request body (default 4 MiB), matching the
	// replicas' own cap.
	MaxBody int64
	// Transport overrides the forwarding transport (in-process fleets,
	// tests). Nil uses http.DefaultTransport.
	Transport http.RoundTripper
	// ForwardTimeout bounds one forwarding attempt (default 90s — run
	// requests can legitimately take their full server-side deadline).
	ForwardTimeout time.Duration
	// ProbeInterval enables the active health prober: a background
	// goroutine GETs /healthz on down-marked shards at this interval and
	// revives them on a 200, so recovery is detected without spending
	// live traffic on it. While the prober owns a shard's health, a
	// failed probe re-arms the down mark for another DownTTL. 0 disables
	// the prober (passive TTL expiry only). Stop it with Router.Close.
	ProbeInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.MaxRetryWait == 0 {
		c.MaxRetryWait = 2 * time.Second
	}
	if c.DownTTL == 0 {
		c.DownTTL = 3 * time.Second
	}
	if c.MaxBody == 0 {
		c.MaxBody = 4 << 20
	}
	if c.Transport == nil {
		c.Transport = http.DefaultTransport
	}
	if c.ForwardTimeout == 0 {
		c.ForwardTimeout = 90 * time.Second
	}
	return c
}

// shardState is one replica's routing state: counters for /statusz and
// the passive health mark. downUntil is unix nanos; 0 means live.
type shardState struct {
	url       string
	requests  atomic.Int64
	errors    atomic.Int64
	rerouted  atomic.Int64
	retries   atomic.Int64
	probes    atomic.Int64
	revivals  atomic.Int64
	downUntil atomic.Int64
}

func (ss *shardState) live(now time.Time) bool {
	return now.UnixNano() >= ss.downUntil.Load()
}

// Router fronts a fleet of commuted replicas, routing each request by
// its program fingerprint so one program's cache entry lives on one
// shard. Create with NewRouter; serve Handler().
type Router struct {
	cfg    Config
	ring   *Ring
	states map[string]*shardState
	mux    *http.ServeMux
	start  time.Time

	requests atomic.Int64
	rejected atomic.Int64 // no live shard reachable

	// Active health prober lifecycle (nil channels when disabled).
	probeStop chan struct{}
	probeDone chan struct{}
	closeOnce sync.Once
}

// NewRouter builds a router over cfg.Shards.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("fleet router needs at least one shard")
	}
	rt := &Router{
		cfg:    cfg,
		ring:   NewRing(cfg.Shards, cfg.VNodes),
		states: make(map[string]*shardState, len(cfg.Shards)),
		mux:    http.NewServeMux(),
		start:  time.Now(),
	}
	for _, s := range cfg.Shards {
		if _, dup := rt.states[s]; dup {
			return nil, fmt.Errorf("duplicate shard %q", s)
		}
		rt.states[s] = &shardState{url: s}
	}
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /statusz", rt.handleStatusz)
	rt.mux.HandleFunc("GET /v1/artifact/{key}", rt.handleArtifact)
	rt.mux.HandleFunc("POST /v1/analyze", rt.handleProxy)
	rt.mux.HandleFunc("POST /v1/run", rt.handleProxy)
	rt.mux.HandleFunc("POST /v1/simulate", rt.handleProxy)
	if cfg.ProbeInterval > 0 {
		rt.probeStop = make(chan struct{})
		rt.probeDone = make(chan struct{})
		go rt.probeLoop()
	}
	return rt, nil
}

// Handler returns the router's HTTP handler tree.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Close stops the active health prober and waits for it to exit.
// Safe to call multiple times; a no-op when the prober is disabled.
func (rt *Router) Close() {
	rt.closeOnce.Do(func() {
		if rt.probeStop != nil {
			close(rt.probeStop)
			<-rt.probeDone
		}
	})
}

// probeLoop drives the active health prober: every ProbeInterval it
// probes each down-marked shard's /healthz out of band.
func (rt *Router) probeLoop() {
	defer close(rt.probeDone)
	tick := time.NewTicker(rt.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.probeStop:
			return
		case <-tick.C:
			rt.probeDownShards()
		}
	}
}

// probeDownShards probes every currently-down shard once. A 200 from
// /healthz clears the down mark immediately (no waiting out the TTL);
// anything else re-arms it for another DownTTL, so live traffic never
// has to rediscover a still-dead shard between probes.
func (rt *Router) probeDownShards() {
	now := time.Now()
	for _, ss := range rt.states {
		if ss.live(now) {
			continue
		}
		ss.probes.Add(1)
		if rt.probeShard(ss.url) {
			ss.downUntil.Store(0)
			ss.revivals.Add(1)
		} else {
			ss.downUntil.Store(time.Now().Add(rt.cfg.DownTTL).UnixNano())
		}
	}
}

// probeShard issues one /healthz probe; true means the shard answered
// 200 (a draining replica's 503 keeps it down).
func (rt *Router) probeShard(shardURL string) bool {
	timeout := rt.cfg.ProbeInterval
	if timeout > 2*time.Second {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, shardURL+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.cfg.Transport.RoundTrip(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// RouteKey computes the shard a request body would be routed to —
// exported for the smoke harness and the load generator, which assert
// deterministic placement.
func (rt *Router) RouteKey(key string) string { return rt.ring.Lookup(key) }

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	for _, ss := range rt.states {
		if ss.live(now) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no live shards"})
}

func (rt *Router) handleStatusz(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	st := api.StatusZ{
		UptimeSec: time.Since(rt.start).Seconds(),
		Requests:  rt.requests.Load(),
		Rejected:  rt.rejected.Load(),
		Endpoints: map[string]api.EndpointStats{},
		Shards:    make(map[string]api.ShardStats, len(rt.states)),
	}
	for url, ss := range rt.states {
		st.Shards[url] = api.ShardStats{
			URL:       url,
			Requests:  ss.requests.Load(),
			Errors:    ss.errors.Load(),
			Rerouted:  ss.rerouted.Load(),
			Retries:   ss.retries.Load(),
			Probes:    ss.probes.Load(),
			Revivals:  ss.revivals.Load(),
			Down:      !ss.live(now),
			VNodes:    rt.ring.VNodes(),
			RingShare: rt.ring.Share(url),
		}
	}
	writeJSON(w, http.StatusOK, st)
}

// handleArtifact routes artifact fetches by their path key, so a peer
// (or operator) asking the router finds the owner's bundle.
func (rt *Router) handleArtifact(w http.ResponseWriter, r *http.Request) {
	rt.forward(w, r, r.PathValue("key"), nil)
}

// handleProxy routes an API request by the fingerprint of the program
// it names. Bodies that don't resolve to a program (unknown app, no
// source) still route — deterministically, by raw body — so the owner
// shard produces the canonical error response.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.cfg.MaxBody+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read body: "+err.Error())
		return
	}
	if int64(len(body)) > rt.cfg.MaxBody {
		writeErr(w, http.StatusRequestEntityTooLarge, "request body over router cap")
		return
	}
	key := routeKeyForBody(body)
	rt.forward(w, r, key, body)
}

// routeKeyForBody extracts the routing key from a request body: the
// program fingerprint when the body resolves, a hash of the raw bytes
// otherwise.
func routeKeyForBody(body []byte) string {
	var src api.SourceRequest
	// Tolerant decode: run/analyze/simulate bodies all embed
	// SourceRequest; their other fields are ignored here (the replica
	// re-validates everything).
	if err := json.Unmarshal(body, &src); err == nil {
		if key, err := server.FingerprintRequest(src); err == nil {
			return key
		}
	}
	return fmt.Sprintf("body:%x", hash64(string(body)))
}

// forward sends the request to key's owner with bounded retry:
// transport failures mark the shard down and reroute via rendezvous
// hashing over the survivors; 429s honor Retry-After (capped) against
// the same shard. Any HTTP response that isn't a retried 429 — success
// or application error — is relayed verbatim.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, key string, body []byte) {
	rt.requests.Add(1)
	tried := make(map[string]bool, len(rt.states))
	ss := rt.pick(key, tried)
	for attempt := 0; ; attempt++ {
		if ss == nil {
			rt.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusServiceUnavailable, "no live shard for "+key)
			return
		}
		ss.requests.Add(1)
		resp, err := rt.send(r, ss.url, body)
		if err != nil {
			ss.errors.Add(1)
			if r.Context().Err() != nil {
				return // client gone; nothing to answer
			}
			// Passive markdown: stop routing to this shard for DownTTL,
			// then let live traffic probe it again.
			ss.downUntil.Store(time.Now().Add(rt.cfg.DownTTL).UnixNano())
			tried[ss.url] = true
			if attempt >= rt.cfg.Retries {
				rt.rejected.Add(1)
				writeErr(w, http.StatusBadGateway, "shard unreachable: "+err.Error())
				return
			}
			next := rt.pick(key, tried)
			if next != nil {
				ss.rerouted.Add(1)
			}
			ss = next
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < rt.cfg.Retries {
			wait := retryAfter(resp, rt.cfg.MaxRetryWait)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			ss.retries.Add(1)
			select {
			case <-time.After(wait):
			case <-r.Context().Done():
				return
			}
			continue
		}
		relay(w, resp)
		return
	}
}

// pick returns the shard to try: the ring owner when it is live and
// untried, else the rendezvous winner among live untried shards, else
// nil. A shard marked down is only skipped while its TTL holds —
// after that it competes again (live-traffic probing).
func (rt *Router) pick(key string, tried map[string]bool) *shardState {
	now := time.Now()
	owner := rt.states[rt.ring.Lookup(key)]
	if owner != nil && owner.live(now) && !tried[owner.url] {
		return owner
	}
	var candidates []string
	for url, ss := range rt.states {
		if ss.live(now) && !tried[url] {
			candidates = append(candidates, url)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	return rt.states[Rendezvous(key, candidates)]
}

// send issues one forwarding attempt.
func (rt *Router) send(r *http.Request, shardURL string, body []byte) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.ForwardTimeout)
	var reqBody io.Reader
	if body != nil {
		reqBody = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, r.Method, shardURL+r.URL.Path, reqBody)
	if err != nil {
		cancel()
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.cfg.Transport.RoundTrip(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// Tie the context's lifetime to the response body.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (cb *cancelBody) Close() error {
	err := cb.ReadCloser.Close()
	cb.cancel()
	return err
}

// relay copies a shard response to the client.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, hdr := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(hdr); v != "" {
			w.Header().Set(hdr, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// retryAfter parses a 429's Retry-After seconds hint, capped.
func retryAfter(resp *http.Response, cap time.Duration) time.Duration {
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			d := time.Duration(secs) * time.Second
			if d > cap {
				return cap
			}
			return d
		}
	}
	// No parseable hint: brief fixed backoff.
	if cap < 50*time.Millisecond {
		return cap
	}
	return 50 * time.Millisecond
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, api.Error{Error: msg})
}
