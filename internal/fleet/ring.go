// Package fleet is the multi-node serving layer: a fingerprint-routed
// router (commutefleet) in front of N commuted replicas. Programs are
// content-addressed — commute.Fingerprint — and the router hashes that
// key onto a consistent-hash ring, so every request for one program
// lands on the same replica and the fleet's aggregate cache capacity
// is the sum of its replicas' caches, not N copies of the same hot
// set. When a shard dies the router falls back to rendezvous hashing
// over the survivors, which moves only the dead shard's keys.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Ring is an immutable consistent-hash ring over shard URLs. Each
// shard owns VNodes points on the ring; a key routes to the shard
// owning the first point clockwise of the key's hash. Determinism is
// load-bearing: every router instance with the same shard list builds
// the identical ring, so routing is stable across router restarts and
// across redundant routers.
type Ring struct {
	shards []string
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int // index into shards
}

// hash64 maps a label to a ring position. SHA-256 (truncated) rather
// than a fast hash: vnode placement quality decides load balance, and
// the ring is built once.
func hash64(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// NewRing builds a ring with vnodes points per shard (<=0: 64).
func NewRing(shards []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{
		shards: append([]string(nil), shards...),
		vnodes: vnodes,
		points: make([]ringPoint, 0, len(shards)*vnodes),
	}
	for si, shard := range r.shards {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("%s#%d", shard, v)),
				shard: si,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break by shard index so the ring
		// stays deterministic regardless of sort stability.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the ring's shard list (not a copy; treat as read-only).
func (r *Ring) Shards() []string { return r.shards }

// VNodes returns the per-shard virtual node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Lookup returns the shard owning key.
func (r *Ring) Lookup(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.shards[r.points[i].shard]
}

// Share returns the fraction of the 64-bit keyspace shard owns — the
// expected request share under uniform keys with every shard live.
func (r *Ring) Share(shard string) float64 {
	si := -1
	for i, s := range r.shards {
		if s == shard {
			si = i
			break
		}
	}
	if si < 0 || len(r.points) == 0 {
		return 0
	}
	var owned uint64
	for i, p := range r.points {
		var span uint64
		if i == 0 {
			// The first point owns the wrap-around arc from the last point.
			span = r.points[0].hash + (^uint64(0) - r.points[len(r.points)-1].hash) + 1
		} else {
			span = p.hash - r.points[i-1].hash
		}
		if p.shard == si {
			owned += span
		}
	}
	return float64(owned) / float64(^uint64(0))
}

// Rendezvous returns the highest-random-weight winner for key among
// candidates — the fallback path when the ring owner is down. Unlike
// "next live point clockwise", HRW spreads a dead shard's keys across
// every survivor instead of dumping them all on one neighbor.
func Rendezvous(key string, candidates []string) string {
	best, bestScore := "", uint64(0)
	for _, c := range candidates {
		score := hash64(c + "\x00" + key)
		if best == "" || score > bestScore || (score == bestScore && c < best) {
			best, bestScore = c, score
		}
	}
	return best
}
