// Benchdiff compares two BENCH_<rev>.json reports produced by
// `commutebench -json` and fails when the gated suites regress beyond
// a threshold. By default four name prefixes gate: "micro-"
// (single-threaded interpreter tight loops), "analysis-" (cold-path
// analysis: AnalyzeAll, deep simplification, pair testing), "serve-"
// (the daemon's cache-hit serving path under load), and "spec-" (the
// speculation workloads on the monitored engines and the journaled
// native backend, commit-heavy and abort-heavy). The application and parallel-runtime
// results are printed for context but carry too much scheduler and
// machine noise to fail CI on. -gate narrows or widens the gated set
// with a regexp over benchmark names, so a CI step can hold one suite
// to a tighter threshold (e.g. compiled-engine micros at 5% while the
// speculation monitor touches the walker).
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -threshold 1.10 old.json new.json
//	benchdiff -gate '^micro-.*-compiled' -threshold 1.05 old.json new.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"

	"commute/internal/bench"
)

func load(path string) (*bench.PerfReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.PerfReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func main() {
	threshold := flag.Float64("threshold", 1.25, "fail when a gated benchmark's ns/op grows by more than this factor")
	gate := flag.String("gate", "^(micro-|analysis-|serve-|spec-)", "regexp over benchmark names selecting which results gate the exit status")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 1.25] [-gate regexp] old.json new.json")
		os.Exit(2)
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad -gate regexp: %v\n", err)
		os.Exit(2)
	}
	oldRep, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	newRep, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	oldBy := make(map[string]bench.PerfResult, len(oldRep.Results))
	for _, r := range oldRep.Results {
		oldBy[r.Name] = r
	}

	fmt.Printf("%-30s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "ratio")
	failed := false
	for _, nr := range newRep.Results {
		or, ok := oldBy[nr.Name]
		if !ok || or.NsPerOp == 0 {
			fmt.Printf("%-30s %14s %14d %8s\n", nr.Name, "-", nr.NsPerOp, "new")
			continue
		}
		ratio := float64(nr.NsPerOp) / float64(or.NsPerOp)
		mark := ""
		if gateRe.MatchString(nr.Name) && ratio > *threshold {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-30s %14d %14d %7.2fx%s\n", nr.Name, or.NsPerOp, nr.NsPerOp, ratio, mark)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: gated suite (%s) regressed beyond %.2fx (%s -> %s)\n",
			*gate, *threshold, oldRep.Rev, newRep.Rev)
		os.Exit(1)
	}
}
