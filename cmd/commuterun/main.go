// Commuterun executes a mini-C++ program: serially (the original
// semantics), in parallel on the goroutine runtime using the
// automatically generated parallel code, or on the simulated
// multiprocessor across a range of processor counts.
//
// Usage:
//
//	commuterun -mode serial   file.mc
//	commuterun -mode parallel -workers 8 file.mc
//	commuterun -mode parallel -timeout 10s -fallback file.mc
//	commuterun -mode parallel -conditional on -app condhash
//	commuterun -mode simulate -procs 1,2,4,8,16,32 -app water
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"commute"
	"commute/internal/apps/src"
	"commute/internal/interp"
	"commute/internal/nativegen"
	"commute/internal/rt"
	"commute/internal/server/api"
)

func main() {
	mode := flag.String("mode", "serial", "serial | parallel | simulate")
	workers := flag.Int("workers", 4, "worker count for -mode parallel")
	procs := flag.String("procs", "1,2,4,8,16,32", "processor counts for -mode simulate")
	app := flag.String("app", "", "run a built-in application (barneshut, water, graph, specdisjoint, specconflict, condhash)")
	timeout := flag.Duration("timeout", 0, "abort execution after this wall-clock deadline (0: none)")
	fallback := flag.Bool("fallback", false, "re-run a failed parallel region with the serial version")
	maxSteps := flag.Int64("maxsteps", 0, "abort after this many interpreter statements (0: unlimited)")
	sched := flag.String("sched", "stealing", "task scheduler for -mode parallel: stealing | central")
	engine := flag.String("engine", "compiled", "execution engine: compiled | walk")
	speculate := flag.String("speculate", "off", "speculative parallelization of rejected extents: off | auto | force")
	specThreshold := flag.Float64("speculate-threshold", 0, "minimum analysis confidence for -speculate auto (0: the 0.5 default)")
	conditional := flag.String("conditional", "off", "guarded execution of conditionally-eligible extents: on | off (the synthesized guard decides parallel vs serial at region entry)")
	condhashMode := flag.Int("condhash-mode", 0, "table mode for -app condhash (0: accumulate, guard true; else overwrite, guard false)")
	statsJSON := flag.Bool("stats-json", false, "emit run stats as one JSON line (the daemon's /v1/run stats schema) instead of the human summary")
	dump := flag.Bool("dump", false, "dump the final global state to stdout after the run, suppressing the human summary (the native backend's -dump format)")
	analysisWorkers := flag.Int("analysis-workers", 0, "goroutines for load-time commutativity analysis (0: GOMAXPROCS, 1: serial)")
	flag.Parse()

	eng, ok := interp.ParseEngine(*engine)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(2)
	}
	spec, ok := rt.ParseSpecMode(*speculate)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown speculate mode %q\n", *speculate)
		os.Exit(2)
	}
	var condOn bool
	switch *conditional {
	case "on":
		condOn = true
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "unknown conditional mode %q (on | off)\n", *conditional)
		os.Exit(2)
	}
	if spec != rt.SpecOff && *mode != "parallel" {
		// Both interpreter engines monitor at full speed now, but the
		// serial runner and the trace-driven simulator have no effect
		// monitor at all — fail loudly rather than silently ignore the
		// requested speculation.
		fmt.Fprintf(os.Stderr, "-speculate %s requires -mode parallel (the %s mode cannot monitor effects)\n", *speculate, *mode)
		os.Exit(2)
	}

	var name, source string
	switch {
	case *app != "":
		name = *app
		switch *app {
		case "barneshut":
			source = src.BarnesHut
		case "water":
			source = src.Water
		case "graph":
			source = src.Graph
		case "specdisjoint":
			source = src.SpecDisjoint
		case "specconflict":
			source = src.SpecConflict
		case "condhash":
			source = src.CondHashBase + src.CondHashMain(*condhashMode, 6)
		default:
			fmt.Fprintf(os.Stderr, "unknown app %q\n", *app)
			os.Exit(2)
		}
	case flag.NArg() == 1:
		name = flag.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		source = string(data)
	default:
		flag.Usage()
		os.Exit(2)
	}

	sys, err := commute.LoadOpts(name, source, commute.LoadOptions{AnalysisWorkers: *analysisWorkers})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// emitStats writes the machine-readable run summary — one JSON line
	// in the same schema the commuted daemon returns from /v1/run
	// (internal/server/api.RunStats), so tooling parses both outputs
	// identically.
	emitStats := func(st api.RunStats) {
		line, err := json.Marshal(st)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(line))
	}

	switch *mode {
	case "serial":
		start := time.Now()
		ip, err := sys.RunSerialEngineContext(ctx, eng, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		if *dump {
			nativegen.DumpInterp(os.Stdout, sys.Prog, ip)
			return
		}
		if *statsJSON {
			emitStats(api.RunStats{
				Mode:   "serial",
				Engine: eng.String(),
				WallMS: float64(wall) / float64(time.Millisecond),
			})
			return
		}
		fmt.Printf("serial execution: %v\n", wall)

	case "parallel":
		start := time.Now()
		opts := commute.RunOptions{
			Workers:            *workers,
			SerialFallback:     *fallback,
			MaxSteps:           *maxSteps,
			Engine:             eng,
			Speculate:          spec,
			SpeculateThreshold: *specThreshold,
			Conditional:        condOn,
		}
		switch *sched {
		case "stealing":
			opts.Sched = rt.SchedStealing
		case "central":
			opts.Sched = rt.SchedCentral
		default:
			fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *sched)
			os.Exit(2)
		}
		ip, stats, err := sys.RunParallelOpts(ctx, opts, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		if *dump {
			nativegen.DumpInterp(os.Stdout, sys.Prog, ip)
			return
		}
		if *statsJSON {
			emitStats(api.RunStats{
				Mode:            "parallel",
				Engine:          eng.String(),
				Sched:           *sched,
				Workers:         *workers,
				WallMS:          float64(wall) / float64(time.Millisecond),
				Regions:         stats.Regions,
				ParallelLoops:   stats.ParallelLoops,
				Chunks:          stats.Chunks,
				Iterations:      stats.Iterations,
				Tasks:           stats.Tasks,
				LazyInlines:     stats.LazyInlines,
				LockAcquires:    stats.LockAcquires,
				Steals:          stats.Steals,
				LocalPops:       stats.LocalPops,
				TaskPanics:      stats.TaskPanics,
				SerialFallbacks: stats.SerialFallbacks,

				SpeculativeRegions: stats.SpeculativeRegions,
				SpeculationCommits: stats.SpeculationCommits,
				SpeculationAborts:  stats.SpeculationAborts,

				GuardParallel: stats.GuardParallel,
				GuardSerial:   stats.GuardSerial,
			})
			return
		}
		fmt.Printf("parallel execution (%d workers, %s scheduler): %v\n", *workers, *sched, wall)
		fmt.Printf("regions=%d loops=%d chunks=%d iterations=%d tasks=%d locks=%d steals=%d localpops=%d\n",
			stats.Regions, stats.ParallelLoops, stats.Chunks,
			stats.Iterations, stats.Tasks, stats.LockAcquires,
			stats.Steals, stats.LocalPops)
		if stats.TaskPanics > 0 || stats.SerialFallbacks > 0 {
			fmt.Printf("panics isolated=%d serial fallbacks=%d\n",
				stats.TaskPanics, stats.SerialFallbacks)
		}
		if stats.SpeculativeRegions > 0 {
			fmt.Printf("speculative regions=%d commits=%d aborts=%d\n",
				stats.SpeculativeRegions, stats.SpeculationCommits, stats.SpeculationAborts)
		}
		if stats.GuardParallel > 0 || stats.GuardSerial > 0 {
			fmt.Printf("guarded regions parallel=%d serial=%d\n",
				stats.GuardParallel, stats.GuardSerial)
		}

	case "simulate":
		tr, err := sys.TraceEngine(eng)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("%6s  %12s  %8s  %10s\n", "procs", "time (s)", "speedup", "blocked (s)")
		var base float64
		for _, ps := range strings.Split(*procs, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(ps))
			if err != nil || p < 1 {
				fmt.Fprintf(os.Stderr, "bad processor count %q\n", ps)
				os.Exit(2)
			}
			res := commute.Simulate(tr, p)
			if base == 0 {
				base = res.TimeMicros
			}
			fmt.Printf("%6d  %12.3f  %7.2fx  %10.3f\n",
				p, res.TimeMicros/1e6, base/res.TimeMicros, res.Breakdown.Blocked/1e6)
		}

	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
}
