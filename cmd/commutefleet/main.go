// Commutefleet is the fleet router: it fronts N commuted replicas and
// routes every request by the fingerprint of the program it names, so
// one program's warm cache entry lives on exactly one shard and the
// fleet's aggregate cache is the sum of its replicas' caches.
//
// Routing is a consistent-hash ring (virtual nodes) with rendezvous
// fallback: a dead shard's keys spread across the survivors while
// every other key stays put. Transport failures mark a shard down for
// -down-ttl; an active prober GETs /healthz on down shards every
// -probe-interval and revives them as soon as they answer, so recovery
// never waits on live traffic; 429s are retried honoring Retry-After
// (capped).
//
// Usage:
//
//	commuted -addr :8081 -blob-dir /tmp/artifacts &
//	commuted -addr :8082 -blob-dir /tmp/artifacts &
//	commuted -addr :8083 -blob-dir /tmp/artifacts &
//	commutefleet -addr :8080 -shards http://localhost:8081,http://localhost:8082,http://localhost:8083
//	curl -s -X POST localhost:8080/v1/analyze -d '{"app":"graph"}'
//	curl -s localhost:8080/statusz   # per-shard request/error/reroute counters
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"commute/internal/fleet"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.String("shards", "", "comma-separated replica base URLs (required)")
	vnodes := flag.Int("vnodes", 64, "virtual nodes per shard on the hash ring")
	retries := flag.Int("retries", 2, "forwarding attempts beyond the first (-1: none)")
	downTTL := flag.Duration("down-ttl", 3*time.Second, "how long a failed shard stays marked down")
	probeInterval := flag.Duration("probe-interval", time.Second, "active /healthz probing of down-marked shards (0: passive down-ttl expiry only)")
	maxRetryWait := flag.Duration("max-retry-wait", 2*time.Second, "cap on honored Retry-After hints")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	flag.Parse()

	if *shards == "" {
		log.Fatal("commutefleet needs -shards (comma-separated replica URLs)")
	}
	r := *retries
	if r == 0 {
		r = -1 // Config treats 0 as "default"; the flag's explicit 0 means none.
	}
	rt, err := fleet.NewRouter(fleet.Config{
		Shards:        strings.Split(*shards, ","),
		VNodes:        *vnodes,
		Retries:       r,
		DownTTL:       *downTTL,
		ProbeInterval: *probeInterval,
		MaxRetryWait:  *maxRetryWait,
	})
	if err != nil {
		log.Fatalf("router: %v", err)
	}
	defer rt.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("commutefleet listening on %s, %d shards", *addr, len(strings.Split(*shards, ",")))
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case sig := <-sigc:
		log.Printf("received %v, draining (up to %v)", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Fatalf("drain incomplete: %v", err)
		}
		log.Printf("drained cleanly")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}
