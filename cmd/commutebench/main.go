// Commutebench regenerates the tables and figures of the paper's
// evaluation section (§6) on the simulated multiprocessor.
//
// Usage:
//
//	commutebench                      # every experiment, default sizes
//	commutebench -exp table3         # one experiment
//	commutebench -paper              # the paper's workload sizes
//	commutebench -bodies 2048,4096 -mols 216,343
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"commute/internal/bench"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad integer list %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	exp := flag.String("exp", "", "experiment ID (table1..table12, fig17..fig20, ablation-*, depbase); empty = all")
	paper := flag.Bool("paper", false, "use the paper's workload sizes (slow)")
	bodies := flag.String("bodies", "", "Barnes-Hut body counts, e.g. 1024,2048")
	mols := flag.String("mols", "", "Water molecule counts, e.g. 125,216")
	procsFlag := flag.String("procs", "", "processor counts, e.g. 1,2,4,8,16,32")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	timeout := flag.Duration("timeout", 0, "abort the whole regeneration after this deadline (0: none)")
	jsonOut := flag.Bool("json", false, "measure real-execution performance and write BENCH_<rev>.json")
	rev := flag.String("rev", "dev", "revision label for the -json output file")
	outDir := flag.String("outdir", ".", "directory for the -json output file")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	serveLoad := flag.Bool("serve-load", false, "load-test an in-process commuted server and report throughput, p99, and cache hit rate")
	loadRequests := flag.Int("load-requests", 200, "total requests for -serve-load / -fleet-load")
	loadConcurrency := flag.Int("load-concurrency", 16, "concurrent clients for -serve-load / -fleet-load")
	loadWorkers := flag.Int("load-workers", 0, "server worker-pool size for -serve-load (0: GOMAXPROCS)")
	fleetLoad := flag.Bool("fleet-load", false, "load-test an in-process fingerprint-routed fleet against a single-replica baseline")
	fleetReplicas := flag.Int("fleet-replicas", 3, "replica count for -fleet-load")
	fleetPrograms := flag.Int("fleet-programs", 60, "distinct-fingerprint corpus size for -fleet-load")
	fleetCacheBytes := flag.Int64("fleet-cache-bytes", 6<<20, "per-replica cache budget for -fleet-load")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	// The load modes honor -json/-rev/-outdir by folding their serve-*
	// entries into the same BENCH_<rev>.json the engine suites write,
	// so benchdiff gates serving-path regressions alongside the rest.
	mergeServe := func(results []bench.PerfResult) {
		if !*jsonOut {
			return
		}
		path, err := bench.MergeResults(*outDir, *rev, results)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("merged %d serve entries into %s\n", len(results), path)
	}

	if *serveLoad {
		out, results, err := bench.RunServeLoad(bench.ServeLoadConfig{
			Requests:    *loadRequests,
			Concurrency: *loadConcurrency,
			Workers:     *loadWorkers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
		mergeServe(results)
		return
	}

	if *fleetLoad {
		cfg := bench.FleetLoadConfig{
			Concurrency: *loadConcurrency,
			Replicas:    *fleetReplicas,
			Programs:    *fleetPrograms,
			CacheBytes:  *fleetCacheBytes,
		}
		if *loadRequests != 200 { // flag default belongs to -serve-load
			cfg.Requests = *loadRequests
		}
		out, results, err := bench.RunFleetLoad(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
		mergeServe(results)
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}

	if *jsonOut {
		rep, err := bench.RunPerf(*rev)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		path, err := rep.WriteJSON(*outDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, r := range rep.Results {
			fmt.Printf("%-30s %12d ns/op %8d allocs/op\n", r.Name, r.NsPerOp, r.AllocsPerOp)
		}
		fmt.Printf("wrote %s\n", path)
		return
	}

	cfg := bench.DefaultConfig()
	if *paper {
		cfg = bench.PaperConfig()
	}
	var err error
	if *bodies != "" {
		if cfg.BHBodies, err = parseInts(*bodies); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *mols != "" {
		if cfg.WaterMols, err = parseInts(*mols); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *procsFlag != "" {
		if cfg.Procs, err = parseInts(*procsFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	r := bench.NewRunner(cfg)
	run := func() (string, error) {
		if *exp == "" {
			return r.RunAll()
		}
		return r.Run(*exp)
	}

	var out string
	if *timeout > 0 {
		// The bench harness has no internal cancellation points, so the
		// deadline is enforced from outside: a run that overshoots it is
		// abandoned and the process exits non-zero instead of hanging.
		type result struct {
			out string
			err error
		}
		ch := make(chan result, 1)
		go func() {
			o, e := run()
			ch <- result{o, e}
		}()
		select {
		case res := <-ch:
			out, err = res.out, res.err
		case <-time.After(*timeout):
			fmt.Fprintf(os.Stderr, "benchmark run exceeded deadline %v\n", *timeout)
			os.Exit(1)
		}
	} else {
		out, err = run()
	}
	if out != "" {
		fmt.Println(out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
