// Commuted is the commutativity-analysis daemon: a long-running HTTP
// service exposing the whole pipeline — analysis, hardened execution,
// and simulated-multiprocessor speedups — over a content-addressed
// artifact cache, so repeated requests for the same program skip
// parse, type check, analysis, and compilation entirely.
//
// Usage:
//
//	commuted -addr :8080
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/analyze -d '{"app":"quickstart"}'
//	curl -s -X POST localhost:8080/v1/run -d '{"app":"graph","mode":"parallel","workers":8}'
//	curl -s localhost:8080/statusz
//
// On SIGTERM/SIGINT the daemon drains: /healthz flips to 503 (so load
// balancers stop routing), no new connections are accepted, and
// in-flight requests run to completion (bounded by -drain-timeout)
// before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"commute/internal/server"
	"commute/internal/server/cache"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "concurrent request executions (0: GOMAXPROCS)")
	queue := flag.Int("queue", 64, "requests allowed to wait for a worker before 429 (-1: none)")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "artifact cache budget in bytes")
	maxOutput := flag.Int64("max-output", 1<<20, "per-request program output cap in bytes")
	defaultTimeout := flag.Duration("default-timeout", 10*time.Second, "execution deadline when a request doesn't set one")
	maxTimeout := flag.Duration("max-timeout", 60*time.Second, "ceiling on requested execution deadlines")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight requests on shutdown")
	analysisWorkers := flag.Int("analysis-workers", 0, "goroutines for cold-load commutativity analysis (0: GOMAXPROCS, 1: serial)")
	speculate := flag.String("speculate", "off", "default speculation policy for /v1/run: off | auto | force")
	specThreshold := flag.Float64("speculate-threshold", 0, "default minimum analysis confidence for auto speculation (0: the 0.5 default)")
	blobDir := flag.String("blob-dir", "", "shared artifact directory (fleet tier); empty disables")
	peers := flag.String("peers", "", "comma-separated peer base URLs to pull artifacts from")
	batchLinger := flag.Duration("batch-linger", 2*time.Millisecond, "window for coalescing identical /v1/analyze requests (0 or negative: off)")
	flag.Parse()

	q := *queue
	if q == 0 {
		q = -1 // Config treats 0 as "default"; the flag's 0 means none.
	}

	// Assemble the artifact tier: shared directory first (cheapest),
	// then peer fetch. Either alone also works.
	var tiers cache.Tiered
	if *blobDir != "" {
		ds, err := cache.NewDirStore(*blobDir)
		if err != nil {
			log.Fatalf("blob dir: %v", err)
		}
		tiers = append(tiers, ds)
	}
	if *peers != "" {
		tiers = append(tiers, cache.NewHTTPPeerStore(strings.Split(*peers, ","), nil))
	}
	var blobs cache.BlobStore
	if len(tiers) > 0 {
		blobs = tiers
	}

	linger := *batchLinger
	if linger == 0 {
		linger = -1 // Config treats 0 as "default"; the flag's explicit 0 means off.
	}
	srv := server.New(server.Config{
		Workers:         *workers,
		Queue:           q,
		CacheBytes:      *cacheBytes,
		MaxOutputBytes:  *maxOutput,
		DefaultTimeout:  *defaultTimeout,
		MaxTimeout:      *maxTimeout,
		AnalysisWorkers: *analysisWorkers,

		Speculate:          *speculate,
		SpeculateThreshold: *specThreshold,

		Blobs:       blobs,
		BatchLinger: linger,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("commuted listening on %s", *addr)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case sig := <-sigc:
		log.Printf("received %v, draining (up to %v)", sig, *drainTimeout)
		srv.SetDraining()
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "drain incomplete: %v\n", err)
			os.Exit(1)
		}
		log.Printf("drained cleanly")
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("serve: %v", err)
	}
}
