// Commutec is the compiler driver: it parses and type checks a program
// in the mini-C++ dialect, runs commutativity analysis, and reports
// which methods are parallel, each parallel extent's statistics, the
// detected parallel loops, and the lock policy — the analogue of the
// paper's annotation file.
//
// Usage:
//
//	commutec [-v] file.mc
//	commutec [-v] -app barneshut|water|graph
//	commutec -emit source file.mc          # Figure 2 style source-to-source output
//	commutec -emit go -o DIR file.mc       # native Go package (build with go build)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"commute"
	"commute/internal/apps/src"
	"commute/internal/codegen"
	"commute/internal/cond"
	"commute/internal/nativegen"
	"commute/internal/transform"
)

func main() {
	app := flag.String("app", "", "analyze a built-in application (barneshut, water, graph, condhash, specdisjoint, specconflict) instead of a file")
	verbose := flag.Bool("v", false, "print per-pair commutativity details")
	emit := flag.String("emit", "", "emit instead of the report: source (the Figure 2 style transformed source) | go (native Go package, requires -o)")
	conditional := flag.Bool("conditional", false, "plan conditionally-eligible extents as guarded parallel regions (-emit go compiles the synthesized guard into the region wrapper)")
	speculate := flag.Bool("speculate", false, "plan statically-rejected extents as speculative regions (-emit go lowers them to journaled method versions behind the generated driver's -speculate flag)")
	outDir := flag.String("o", "", "output directory for -emit go")
	doTransform := flag.Bool("transform", false, "apply the §7.2 loop replacement (while loops → tail-recursive methods) before analysis")
	annotations := flag.String("annotations", "", "also write the annotation file (JSON) to this path (the paper's analysis→codegen interface)")
	flag.Parse()

	var name, source string
	switch {
	case *app != "":
		name = *app
		switch *app {
		case "barneshut":
			source = src.BarnesHut
		case "water":
			source = src.Water
		case "graph":
			source = src.Graph
		case "condhash":
			source = src.CondHashBase + src.CondHashMain(0, 6)
		case "specdisjoint":
			source = src.SpecDisjoint
		case "specconflict":
			source = src.SpecConflict
		default:
			fmt.Fprintf(os.Stderr, "unknown app %q (have barneshut, water, graph, condhash, specdisjoint, specconflict)\n", *app)
			os.Exit(2)
		}
	case flag.NArg() == 1:
		name = flag.Arg(0)
		data, err := os.ReadFile(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		source = string(data)
	default:
		flag.Usage()
		os.Exit(2)
	}

	var sys *commute.System
	var err error
	if *doTransform {
		var rewrites []transform.Rewrite
		sys, _, rewrites, err = commute.LoadTransformed(name, source)
		if err == nil {
			for _, rw := range rewrites {
				fmt.Printf("// loop in %s replaced by tail-recursive %s\n", rw.Method, rw.Helper)
			}
		}
	} else {
		sys, err = commute.Load(name, source)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *annotations != "" {
		data, err := sys.Plan.AnnotationsJSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*annotations, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	switch *emit {
	case "":
	case "source":
		fmt.Print(sys.Plan.EmitParallelSource(sys.File))
		return
	case "go":
		if *outDir == "" {
			fmt.Fprintln(os.Stderr, "-emit go requires -o DIR")
			os.Exit(2)
		}
		genErr := error(nil)
		switch {
		case *conditional:
			// A dedicated plan with guards lowered into the region
			// wrappers; the generated binary's -conditional flag picks
			// between guarded-parallel and forced-serial at runtime.
			// ConditionalGuards plans already speculate on rejected
			// extents, so -speculate adds nothing here.
			plan := codegen.BuildWithOptions(sys.Analysis, codegen.Options{ConditionalGuards: true, SpeculateRejected: *speculate})
			genErr = nativegen.GeneratePlan(plan, name, *outDir)
		case *speculate:
			// The speculative plan: rejected extents become journaled
			// regions the generated binary enables with -speculate
			// auto|force (off by default — the serial versions run).
			genErr = nativegen.GeneratePlan(sys.SpecPlan, name, *outDir)
		default:
			genErr = nativegen.Generate(sys, name, *outDir)
		}
		if genErr != nil {
			fmt.Fprintln(os.Stderr, genErr)
			os.Exit(1)
		}
		fmt.Printf("wrote native Go package for %s to %s (build with: cd %s && go build)\n", name, *outDir, *outDir)
		return
	default:
		fmt.Fprintf(os.Stderr, "unknown -emit mode %q (have source, go)\n", *emit)
		os.Exit(2)
	}

	fmt.Printf("== commutativity analysis: %s ==\n\n", name)
	for _, r := range sys.Reports() {
		if r.Parallel {
			fmt.Printf("PARALLEL %-30s extent=%d aux=%d independent=%d symbolic=%d\n",
				r.Method.FullName(), r.ExtentSize, r.AuxiliaryCallSites,
				r.IndependentPairs, r.SymbolicPairs)
			if *verbose {
				for _, pr := range r.Pairs {
					kind := "independent"
					if !pr.Independent {
						kind = "symbolically executed"
					}
					fmt.Printf("         commute(%s, %s): %s\n",
						pr.M1.FullName(), pr.M2.FullName(), kind)
				}
			}
		} else if r.ConditionalEligible {
			fmt.Printf("COND     %-30s guard: %s\n", r.Method.FullName(), cond.Render(r.Guard))
			if *verbose {
				fmt.Printf("         reason: %s\n", r.Reason)
				fmt.Printf("         condition: %s\n", r.Condition)
			}
		} else {
			fmt.Printf("serial   %-30s %s\n", r.Method.FullName(), r.Reason)
		}
	}

	fmt.Printf("\n== parallel loops ==\n")
	var lines []string
	for _, lp := range sys.Plan.Loops {
		status := "parallel"
		if !lp.Parallel {
			status = "suppressed (nested)"
		}
		lines = append(lines, fmt.Sprintf("loop in %-26s %s", lp.Name, status))
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	fmt.Printf("%d found, %d suppressed, %d generated\n",
		sys.Plan.LoopsFound, sys.Plan.LoopsSuppressed,
		sys.Plan.LoopsFound-sys.Plan.LoopsSuppressed)

	fmt.Printf("\n== lock policy ==\n")
	var locked []string
	for cl := range sys.Plan.LockedClasses {
		locked = append(locked, cl.Name)
	}
	sort.Strings(locked)
	if len(locked) == 0 {
		fmt.Println("no classes require locks")
	}
	for _, cl := range locked {
		fmt.Printf("class %s keeps its mutual exclusion lock\n", cl)
	}
}
