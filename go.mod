module commute

go 1.22
