package commute_test

import (
	"bytes"
	"strings"
	"testing"

	"commute"
	"commute/internal/apps/src"
)

func TestLoadErrors(t *testing.T) {
	if _, err := commute.Load("bad.mc", "class {"); err == nil {
		t.Error("expected parse error")
	}
	if _, err := commute.Load("bad.mc", `
class a { public: int x; void m(); };
void a::m() { y = 1; }
`); err == nil || !strings.Contains(err.Error(), "type check") {
		t.Errorf("expected type-check error, got %v", err)
	}
}

func TestLoadFiles(t *testing.T) {
	sys, err := commute.LoadFiles(map[string]string{
		"classes.mc": `
class acc { public: int n; void add(int k); };
void acc::add(int k) { n = n + k; }
acc A;
`,
		"main.mc": `
void main() {
  A.add(1);
  A.add(2);
}
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	ip, err := sys.RunSerial(nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sys.ReadInt(ip, "A.n")
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("A.n = %d, want 3", n)
	}
}

func TestFacadePipeline(t *testing.T) {
	sys, err := commute.Load("graph.mc", src.Graph)
	if err != nil {
		t.Fatal(err)
	}
	r := sys.Report("builder::traverse")
	if r == nil || !r.Parallel {
		t.Fatal("traverse should be parallel")
	}
	if sys.Report("no::such") != nil {
		t.Error("unknown method should yield nil report")
	}
	names := sys.ParallelMethods()
	found := false
	for _, n := range names {
		if n == "graph::visit" {
			found = true
		}
	}
	if !found {
		t.Errorf("ParallelMethods() = %v, missing graph::visit", names)
	}

	var out bytes.Buffer
	if _, err := sys.RunSerial(&out); err != nil {
		t.Fatal(err)
	}
	_, stats, err := sys.RunParallel(4, &out)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Regions == 0 {
		t.Error("no parallel regions executed")
	}

	tr, err := sys.Trace()
	if err != nil {
		t.Fatal(err)
	}
	res1 := commute.Simulate(tr, 1)
	res8 := commute.Simulate(tr, 8)
	if res8.TimeMicros >= res1.TimeMicros {
		t.Errorf("no simulated speedup: %f vs %f", res1.TimeMicros, res8.TimeMicros)
	}
}

func TestReadPaths(t *testing.T) {
	sys, err := commute.Load("bh.mc", src.BarnesHut)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := sys.RunSerial(nil)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sys.ReadInt(ip, "Nbody.numbodies")
	if err != nil || n != 256 {
		t.Fatalf("numbodies = %d (%v)", n, err)
	}
	x, err := sys.ReadFloat(ip, "Nbody.bodies[0].pos.val[0]")
	if err != nil {
		t.Fatal(err)
	}
	if x < 0 || x > 4 {
		t.Errorf("pos out of box: %f", x)
	}
	// Error paths.
	for _, bad := range []string{
		"Nope.x", "Nbody.nope", "Nbody.bodies[99999].phi",
		"Nbody.numbodies[0]", "Nbody.bodies[0].pos.val[0].deeper",
	} {
		if _, err := sys.Read(ip, bad); err == nil {
			t.Errorf("Read(%q) should fail", bad)
		}
	}
}
