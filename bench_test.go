// Benchmarks regenerating the paper's tables and figures (one benchmark
// per table/figure, delegating to the internal/bench harness at
// benchmark-friendly sizes), plus microbenchmarks of the compiler
// phases and the real parallel runtime.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package commute_test

import (
	"runtime"
	"testing"

	"commute"
	"commute/internal/apps"
	"commute/internal/apps/src"
	"commute/internal/bench"
)

func benchRunner() *bench.Runner {
	return bench.NewRunner(bench.Config{
		BHBodies:   []int{256},
		BHSteps:    1,
		WaterMols:  []int{64},
		WaterSteps: 1,
		Procs:      []int{1, 2, 4, 8, 16, 32},
	})
}

// benchExperiment runs one harness experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r := benchRunner()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkFig17(b *testing.B)   { benchExperiment(b, "fig17") }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)  { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)  { benchExperiment(b, "table6") }
func BenchmarkFig18(b *testing.B)   { benchExperiment(b, "fig18") }
func BenchmarkTable7(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkTable8(b *testing.B)  { benchExperiment(b, "table8") }
func BenchmarkTable9(b *testing.B)  { benchExperiment(b, "table9") }
func BenchmarkFig19(b *testing.B)   { benchExperiment(b, "fig19") }
func BenchmarkTable10(b *testing.B) { benchExperiment(b, "table10") }
func BenchmarkTable11(b *testing.B) { benchExperiment(b, "table11") }
func BenchmarkFig20(b *testing.B)   { benchExperiment(b, "fig20") }
func BenchmarkTable12(b *testing.B) { benchExperiment(b, "table12") }

func BenchmarkAblationAux(b *testing.B)      { benchExperiment(b, "ablation-aux") }
func BenchmarkAblationLocks(b *testing.B)    { benchExperiment(b, "ablation-locks") }
func BenchmarkAblationSuppress(b *testing.B) { benchExperiment(b, "ablation-suppress") }
func BenchmarkDepBase(b *testing.B)          { benchExperiment(b, "depbase") }

// ---------------------------------------------------------------------
// Compiler phase microbenchmarks

// BenchmarkAnalyzeBarnesHut measures the full front end + commutativity
// analysis + code generation on Barnes-Hut (the paper reports 2.5s on a
// 1995 SparcStation for the analysis alone, §6.2.3).
func BenchmarkAnalyzeBarnesHut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := commute.Load("barneshut.mc", src.BarnesHut)
		if err != nil {
			b.Fatal(err)
		}
		sys.Reports()
	}
}

// BenchmarkAnalyzeWater is the Water analogue (paper: 6.65s, §6.3.3).
func BenchmarkAnalyzeWater(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := commute.Load("water.mc", src.Water)
		if err != nil {
			b.Fatal(err)
		}
		sys.Reports()
	}
}

// BenchmarkParseBarnesHut isolates the front end.
func BenchmarkParseBarnesHut(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := commute.Load("barneshut.mc", src.BarnesHut); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Real parallel runtime benchmarks (goroutine-backed execution of the
// generated parallel code)

func benchRealParallel(b *testing.B, sys *commute.System, workers int) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.RunParallel(workers, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealBarnesHutSerial(b *testing.B) {
	sys, err := apps.BarnesHut(256, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunSerial(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealBarnesHutParallel1(b *testing.B) {
	sys, err := apps.BarnesHut(256, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchRealParallel(b, sys, 1)
}

func BenchmarkRealBarnesHutParallelN(b *testing.B) {
	sys, err := apps.BarnesHut(256, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchRealParallel(b, sys, runtime.NumCPU())
}

func BenchmarkRealWaterParallelN(b *testing.B) {
	sys, err := apps.Water(64, 1)
	if err != nil {
		b.Fatal(err)
	}
	benchRealParallel(b, sys, runtime.NumCPU())
}

// BenchmarkSimulate32 isolates the multiprocessor simulator.
func BenchmarkSimulate32(b *testing.B) {
	sys, err := apps.BarnesHut(256, 1)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sys.Trace()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		commute.Simulate(tr, 32)
	}
}
